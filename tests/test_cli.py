import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS
from repro.obs import get_metrics, get_tracer


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(ALL_EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "fig13" in out
    assert "expectation [MET]" in out


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "fig99"])


def test_demo_letter(capsys):
    assert main(["--seed", "3", "demo", "letter", "I"]) == 0
    out = capsys.readouterr().out
    assert "wrote 'I'" in out
    assert "candidates" in out


def test_demo_word_with_lexicon(capsys):
    assert main(["--seed", "3", "demo", "word", "HI", "--lexicon", "HI,NO"]) == 0
    out = capsys.readouterr().out
    assert "decoded" in out


def test_inspect(capsys):
    assert main(["--seed", "3", "inspect", "--stroke", "hbar"]) == 0
    out = capsys.readouterr().out
    assert "per-tag RSS dip" in out
    assert "recognised" in out


def test_parser_rejects_bad_mount():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--mount", "sideways", "experiments"])


def test_parser_defaults():
    args = build_parser().parse_args(["experiments"])
    assert args.seed == 7
    assert args.location == 2
    assert args.trace_out == ""
    assert args.log_level == "warning"


@pytest.fixture()
def clean_observability():
    """stats/--trace-out mutate the global tracer+metrics; restore them."""
    tracer, metrics = get_tracer(), get_metrics()
    yield
    tracer.reset()
    tracer.disable()
    metrics.reset()
    metrics.disable()


ALL_STAGE_SPANS = (
    "unwrap", "suppression", "imaging", "otsu",
    "classify", "direction", "segmentation", "grammar",
)


def test_stats_fast_prints_span_tree_and_metrics(capsys, clean_observability):
    assert main(["--seed", "3", "stats", "--fast"]) == 0
    out = capsys.readouterr().out
    for stage in ALL_STAGE_SPANS:
        assert stage in out, f"stage {stage} missing from stats output"
    assert "count=" in out and "p95=" in out
    assert "runner.motion_trials" in out
    assert "reader.reads" in out


def test_trace_out_writes_valid_jsonl(tmp_path, capsys, clean_observability):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["--seed", "3", "--trace-out", str(trace_path),
                 "demo", "letter", "I"]) == 0
    lines = trace_path.read_text().strip().splitlines()
    assert lines, "trace file is empty"
    names = set()
    for line in lines:
        record = json.loads(line)
        assert {"name", "path", "depth", "start_s", "duration_s", "attrs"} <= set(record)
        names.add(record["name"])
    assert "recognize_letter" in names
    assert "grammar" in names


def test_record_headers_carry_scenario_metadata(tmp_path):
    from repro.rfid.capture import load_metadata

    path = str(tmp_path / "cap.jsonl")
    assert main(["--seed", "3", "record", path, "--stroke", "hbar"]) == 0
    meta = load_metadata(path)
    static_meta = load_metadata(path + ".calibration")
    for m in (meta, static_meta):
        assert m["seed"] == 3
        assert m["mount"] == "nlos"
        assert m["location"] == 2
        assert m["tx_power_dbm"] == 30.0


def test_replay_matched_capture_does_not_warn(tmp_path, caplog):
    path = str(tmp_path / "cap.jsonl")
    assert main(["--seed", "3", "record", path, "--stroke", "hbar"]) == 0
    with caplog.at_level(logging.WARNING, logger="repro"):
        assert main(["--seed", "3", "replay", path]) == 0
    assert not [r for r in caplog.records if "mismatch" in r.getMessage()]


def test_replay_warns_on_scenario_mismatch(tmp_path, caplog):
    path = str(tmp_path / "cap.jsonl")
    assert main(["--seed", "3", "record", path, "--stroke", "hbar"]) == 0
    # Tamper the calibration header: same reads, different claimed scenario.
    calib = path + ".calibration"
    with open(calib, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    header = json.loads(lines[0])
    header["seed"] = 99
    header["mount"] = "los"
    with open(calib, "w", encoding="utf-8") as fh:
        fh.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with caplog.at_level(logging.WARNING, logger="repro"):
        assert main(["--seed", "3", "replay", path]) == 0
    warnings = [r.getMessage() for r in caplog.records if "mismatch" in r.getMessage()]
    assert any("seed" in w for w in warnings)
    assert any("mount" in w for w in warnings)


def test_stats_prometheus_lints_clean(capsys, clean_observability):
    from repro.obs.export import lint_exposition

    assert main(["--seed", "3", "stats", "--fast", "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert lint_exposition(out) == []
    assert "# TYPE repro_runner_motion_trials_total counter" in out
    assert "repro_span_p95_seconds" in out


def test_top_once_healthy_run_exits_zero(capsys, clean_observability):
    assert main(["--seed", "3", "top", "--once", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "== spans" in out and "== health ==" in out
    assert "detect_motion_budget" in out
    assert "FAIL" not in out


def test_top_validate_rules(tmp_path, capsys):
    import os

    shipped = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "scripts", "health_rules.json",
    )
    assert main(["top", "--validate-rules", shipped]) == 0
    assert "health rule(s) ok" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"name": "x", "kind": "vibes",
                                "target": "g", "threshold": 1.0}]))
    assert main(["top", "--validate-rules", str(bad)]) == 2
    assert "invalid health rules" in capsys.readouterr().err


def test_metrics_out_writes_jsonl_series(tmp_path, capsys, clean_observability):
    out_path = tmp_path / "metrics.jsonl"
    assert main(["--seed", "3", "--metrics-out", str(out_path),
                 "demo", "letter", "I"]) == 0
    err = capsys.readouterr().err
    assert "metric samples" in err
    lines = out_path.read_text().strip().splitlines()
    assert lines
    final = json.loads(lines[-1])
    assert {"t", "counters", "gauges", "histograms", "spans"} <= set(final)
    assert final["counters"].get("reader.reads", 0.0) > 0


def test_parser_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.port == 9470
    assert args.metrics_port is None
    assert args.workers == 1
    assert args.max_pending == 64
    assert args.drop_policy == "block"
    assert args.batch_sessions == 32


def test_parser_serve_rejects_bad_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--drop-policy", "vibes"])


def test_parser_feed_and_loadgen_defaults(tmp_path):
    feed = build_parser().parse_args(["feed", str(tmp_path / "cap")])
    assert feed.chunk == pytest.approx(0.1)
    assert feed.no_pace is False
    load = build_parser().parse_args(["loadgen", "--sessions", "7"])
    assert load.sessions == 7
    assert load.letter == "T"
    assert load.distinct == 8
    assert load.ramp == pytest.approx(0.0)
    assert load.json is False


def test_keyboard_interrupt_exits_130_and_stops_pools(monkeypatch, capsys):
    from repro.sim import parallel

    calls = []
    monkeypatch.setattr(parallel, "shutdown_pools", lambda: calls.append(1))

    def boom(args):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.cli.cmd_experiments", boom)
    assert main(["experiments"]) == 130
    assert "interrupted" in capsys.readouterr().err
    assert calls == [1]
