import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(ALL_EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "fig13" in out
    assert "expectation [MET]" in out


def test_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "fig99"])


def test_demo_letter(capsys):
    assert main(["--seed", "3", "demo", "letter", "I"]) == 0
    out = capsys.readouterr().out
    assert "wrote 'I'" in out
    assert "candidates" in out


def test_demo_word_with_lexicon(capsys):
    assert main(["--seed", "3", "demo", "word", "HI", "--lexicon", "HI,NO"]) == 0
    out = capsys.readouterr().out
    assert "decoded" in out


def test_inspect(capsys):
    assert main(["--seed", "3", "inspect", "--stroke", "hbar"]) == 0
    out = capsys.readouterr().out
    assert "per-tag RSS dip" in out
    assert "recognised" in out


def test_parser_rejects_bad_mount():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--mount", "sideways", "experiments"])


def test_parser_defaults():
    args = build_parser().parse_args(["experiments"])
    assert args.seed == 7
    assert args.location == 2
