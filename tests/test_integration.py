"""End-to-end integration tests: reader -> pipeline -> recognition.

These exercise the full stack the way a deployment would — calibration
capture, live sessions, stroke and letter recognition — and pin the
headline numbers at shape level (the benchmark suite measures them at
scale).
"""

import numpy as np
import pytest

from repro import (
    Motion,
    ScenarioConfig,
    SessionRunner,
    StrokeKind,
    all_motions,
    build_scenario,
    score_motion_trials,
)
from repro.motion.script import script_for_letter
from repro.sim.metrics import score_segmentation


@pytest.fixture(scope="module")
def runner():
    return SessionRunner(build_scenario(ScenarioConfig(seed=11)))


def test_full_motion_battery_accuracy(runner):
    trials = runner.run_motion_battery(all_motions(), repeats=1)
    counts = score_motion_trials(trials)
    # Paper: 94% NLOS.  One repeat of 13 motions: allow two misses.
    assert counts.accuracy >= 0.84


def test_direction_recognised_both_ways(runner):
    from repro.motion.strokes import Direction

    fwd = runner.run_motion(Motion(StrokeKind.HBAR, Direction.FORWARD))
    rev = runner.run_motion(Motion(StrokeKind.HBAR, Direction.REVERSE))
    assert fwd.observed is not None and rev.observed is not None
    if fwd.shape_correct and rev.shape_correct:
        assert fwd.observed.direction != rev.observed.direction


def test_letter_sessions_segment_and_recognise(runner):
    hits = 0
    seg_ok = 0
    letters = ["I", "L", "T", "H"]
    for letter in letters:
        trial = runner.run_letter(letter)
        hits += trial.correct
        score = score_segmentation(trial.result.windows, trial.true_stroke_intervals)
        seg_ok += score.miss_rate == 0.0
    assert hits >= len(letters) - 1
    assert seg_ok >= len(letters) - 1


def test_quiet_pad_produces_no_strokes(runner):
    log = runner.reader.collect_static(2.0)
    assert runner.pad.segment(log) == []


def test_reproducibility_same_seed():
    a = SessionRunner(build_scenario(ScenarioConfig(seed=3)))
    b = SessionRunner(build_scenario(ScenarioConfig(seed=3)))
    ta = a.run_motion(Motion(StrokeKind.VBAR))
    tb = b.run_motion(Motion(StrokeKind.VBAR))
    assert ta.log_size == tb.log_size
    assert (ta.observed is None) == (tb.observed is None)
    if ta.observed is not None:
        assert ta.observed.kind == tb.observed.kind
        assert ta.observed.direction == tb.observed.direction


def test_report_stream_is_protocol_shaped(runner):
    """The pipeline consumes only LLRP-style reports — verify the stream."""
    log = runner.reader.collect_static(1.0)
    rate = log.aggregate_read_rate()
    assert 80.0 < rate < 450.0  # commodity-reader territory
    per_tag = log.per_tag()
    assert len(per_tag) == 25
    # Irregular per-tag sampling (the MAC, not a fixed scheduler).
    gaps = np.diff(per_tag[0].timestamps)
    assert gaps.std() > 0.0


def test_letter_with_kinect_ground_truth(runner):
    from repro.motion.kinect import KinectSimulator, trajectory_deviation

    script = script_for_letter("Z", runner.rng)
    log = runner.run_script(script)
    result = runner.pad.recognize_letter(log)
    track = KinectSimulator(np.random.default_rng(0)).track(script)
    deviation = trajectory_deviation(track, script.true_trajectory())
    assert deviation < 0.02
    assert len(result.windows) >= 2
