import numpy as np
import pytest

from repro import analysis
from repro.motion.script import script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.rfid.reports import ReportLog


class TestSparkline:
    def test_monotone_series(self):
        assert analysis.sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_series(self):
        out = analysis.sparkline([5.0] * 4)
        assert out == "▁▁▁▁"

    def test_empty(self):
        assert analysis.sparkline([]) == ""

    def test_width_downsampling(self):
        out = analysis.sparkline(list(range(100)), width=10)
        assert len(out) == 10
        # Still monotone after downsampling.
        assert out == "".join(sorted(out))


class TestSessionViews:
    @pytest.fixture()
    def session(self, shared_runner):
        script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
        return shared_runner.run_script(script)

    def test_summary_has_rates(self, shared_runner, session):
        text = analysis.session_summary(session, shared_runner.pad.calibration)
        assert "reads/s" in text
        assert "rms" in text

    def test_summary_empty_log(self):
        assert analysis.session_summary(ReportLog()) == "empty session"

    def test_phase_sparklines_one_per_tag(self, shared_runner, session):
        lines = analysis.phase_sparklines(session, shared_runner.pad.calibration)
        assert len(lines) == len(session.tag_indices())
        assert all(line.startswith("tag") for line in lines)

    def test_rss_sparklines_subset(self, shared_runner, session):
        lines = analysis.rss_sparklines(
            session, shared_runner.pad.calibration, tag_indices=[0, 12]
        )
        assert len(lines) == 2

    def test_activity_trace_two_rows(self, shared_runner, session):
        trace = analysis.activity_trace(session, shared_runner.pad.calibration)
        assert trace.count("\n") == 1

    def test_activity_trace_empty(self, shared_runner):
        assert "empty" in analysis.activity_trace(
            ReportLog(), shared_runner.pad.calibration
        )

    def test_read_rate_table(self, session):
        rows = analysis.read_rate_table(session)
        assert all(rate > 0 for _, _, rate in rows)
        assert sum(n for _, n, _ in rows) == len(session)
