import pytest

from repro.core.pipeline import RFIPad, RFIPadConfig
from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.physics.geometry import GridLayout
from repro.rfid.reports import ReportLog


def test_uncalibrated_pad_raises(shared_runner):
    pad = RFIPad(GridLayout())
    with pytest.raises(RuntimeError):
        pad.detect_motion(ReportLog())


def test_calibrate_from_tunes_threshold(shared_runner):
    pad = RFIPad(shared_runner.scenario.layout)
    static = shared_runner.reader.collect_static(3.0)
    default_thr = pad.config.segmentation.threshold
    pad.calibrate_from(static)
    assert pad.calibration is not None
    assert pad.config.segmentation.threshold != default_thr
    assert pad.config.segmentation.noise_floor > 0.0


def test_detect_motion_vbar(shared_runner):
    script = script_for_motion(Motion(StrokeKind.VBAR, Direction.FORWARD),
                               shared_runner.rng)
    log = shared_runner.run_script(script)
    obs = shared_runner.pad.detect_motion(log)
    assert obs is not None
    assert obs.kind is StrokeKind.VBAR
    assert obs.direction is Direction.FORWARD
    assert obs.grey is not None and obs.binary is not None
    assert obs.trough_order  # ordering recovered


def test_detect_motion_on_quiet_log(shared_runner):
    log = shared_runner.reader.collect_static(1.5)
    obs = shared_runner.pad.detect_motion(log)
    # A quiet pad must not hallucinate a stroke shape with spread foreground:
    # either nothing is returned or the result is a low-stakes compact blob.
    if obs is not None:
        assert obs.kind is StrokeKind.CLICK or obs.binary.foreground_count() <= 25


def test_analyze_window_respects_bounds(shared_runner):
    script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
    log = shared_runner.run_script(script)
    t0, t1 = script.stroke_intervals()[0]
    obs = shared_runner.pad.analyze_window(log, t0, t1)
    assert obs is not None
    assert obs.t0 == t0 and obs.t1 == t1


def test_recognize_letter_end_to_end(shared_runner):
    script = script_for_letter("T", shared_runner.rng)
    log = shared_runner.run_script(script)
    result = shared_runner.pad.recognize_letter(log)
    assert result.letter == "T"
    assert len(result.strokes) == 2
    assert result.candidates[0][0] == "T"


def test_calibrate_from_returns_tuned_config(shared_runner):
    pad = RFIPad(shared_runner.scenario.layout)
    static = shared_runner.reader.collect_static(3.0)
    tuned = pad.calibrate_from(static)
    assert tuned is pad.config.segmentation
    assert tuned.threshold > 0.0
    assert tuned.noise_floor > 0.0
    untouched = RFIPad(shared_runner.scenario.layout)
    default_thr = untouched.config.segmentation.threshold
    returned = untouched.calibrate_from(static, tune_segmentation=False)
    assert returned.threshold == default_thr


def test_widest_window_prefers_earliest_on_ties():
    from repro.core.events import SegmentedWindow
    from repro.core.stages import widest_window

    a = SegmentedWindow(t0=1.0, t1=2.0, peak_std_rms=0.5)
    b = SegmentedWindow(t0=3.0, t1=4.0, peak_std_rms=0.9)
    c = SegmentedWindow(t0=5.0, t1=5.5, peak_std_rms=0.1)
    assert widest_window([c, b, a]) is a  # equal durations: earliest t0 wins
    wide = SegmentedWindow(t0=6.0, t1=9.0, peak_std_rms=0.2)
    assert widest_window([a, b, wide]) is wide


def test_suppression_toggle_changes_result_values(shared_runner):
    from repro.core.suppression import accumulative_differences

    script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
    log = shared_runner.run_script(script)
    supp = accumulative_differences(log, shared_runner.pad.calibration)
    assert supp.raw != supp.suppressed
