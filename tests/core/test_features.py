import math

import numpy as np
import pytest

from repro.core.features import extract_features, opening_quadrant
from repro.core.imaging import BinaryMap, GreyMap
from repro.physics.geometry import GridLayout


def _maps(cells, weights=None, rows=5, cols=5):
    layout = GridLayout(rows=rows, cols=cols, pitch=0.06)
    values = np.zeros((rows, cols))
    mask = np.zeros((rows, cols), dtype=bool)
    for i, (r, c) in enumerate(cells):
        mask[r, c] = True
        values[r, c] = 1.0 if weights is None else weights[i]
    return GreyMap(values, layout), BinaryMap(mask, 0.5, layout)


def test_empty_map_returns_none():
    grey, binary = _maps([])
    assert extract_features(grey, binary) is None


def test_single_cell():
    grey, binary = _maps([(2, 3)])
    f = extract_features(grey, binary)
    assert f.count == 1
    assert f.centroid == (3.0, 2.0)  # x=col, y=rows-1-row
    assert f.major_extent == 0.0


def test_horizontal_line_angle():
    grey, binary = _maps([(2, c) for c in range(5)])
    f = extract_features(grey, binary)
    assert abs(f.angle_deg) < 5.0
    assert f.elongation > 5.0
    assert f.span_cells == (1, 5)


def test_vertical_line_angle():
    grey, binary = _maps([(r, 2) for r in range(5)])
    f = extract_features(grey, binary)
    assert abs(abs(f.angle_deg) - 90.0) < 5.0


def test_slash_has_positive_slope():
    grey, binary = _maps([(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)])
    f = extract_features(grey, binary)
    assert 30.0 < f.angle_deg < 60.0


def test_backslash_has_negative_slope():
    grey, binary = _maps([(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)])
    f = extract_features(grey, binary)
    assert -60.0 < f.angle_deg < -30.0


def test_c_arc_opens_right():
    # "⊂" ring: left half of a circle.
    cells = [(0, 1), (0, 2), (1, 0), (2, 0), (3, 0), (4, 1), (4, 2), (1, 3), (3, 3)]
    grey, binary = _maps(cells)
    f = extract_features(grey, binary)
    assert math.isfinite(f.circle_radius)
    assert f.coverage_deg > 180.0
    assert opening_quadrant(f.opening) == "right"


def test_d_arc_opens_left():
    cells = [(0, 2), (0, 3), (1, 4), (2, 4), (3, 4), (4, 3), (4, 2), (1, 1), (3, 1)]
    grey, binary = _maps(cells)
    f = extract_features(grey, binary)
    assert opening_quadrant(f.opening) == "left"


def test_line_fails_the_arc_gates():
    grey, binary = _maps([(2, c) for c in range(5)])
    f = extract_features(grey, binary)
    # A collinear set can fool the Kasa fit into a small degenerate circle,
    # but a line must always fail at least one of the classifier's arc
    # gates: off-axis thickness and angular coverage.
    thin = f.minor_std < 0.16 * f.major_extent
    low_coverage = f.coverage_deg < 110.0
    assert thin or low_coverage


def test_weights_shift_centroid():
    grey, binary = _maps([(2, 1), (2, 3)], weights=[3.0, 1.0])
    f = extract_features(grey, binary)
    assert f.centroid[0] < 2.0  # pulled towards the heavy cell


def test_opening_quadrant_zero_vector():
    assert opening_quadrant((0.0, 0.0)) is None
    assert opening_quadrant((1.0, 0.1)) == "right"
    assert opening_quadrant((0.1, -1.0)) == "down"
