import numpy as np
import pytest

from repro.core.calibration import calibrate
from repro.core.direction import (
    DirectionConfig,
    Trough,
    detect_troughs,
    estimate_direction,
    passage_order,
    trough_path,
)
from repro.motion.strokes import ArcOpening, Direction, StrokeKind
from repro.physics.geometry import GridLayout
from repro.rfid.reports import ReportLog, TagReadReport
from repro.units import TWO_PI

LAYOUT = GridLayout()


def _log_with_dips(dip_times_by_tag, duration=2.0, baseline=-40.0, depth=8.0):
    """Static RSS with a gaussian dip at the given time per tag."""
    log = ReportLog()
    for tag, dip_t in dip_times_by_tag.items():
        for i in range(int(duration / 0.06)):
            t = i * 0.06 + tag * 1e-4
            rss = baseline - depth * np.exp(-0.5 * ((t - dip_t) / 0.12) ** 2)
            log.append(
                TagReadReport(
                    epc=f"E-{tag}", tag_index=tag, timestamp=t,
                    phase_rad=1.0, rss_dbm=float(rss),
                )
            )
    return log


def _calibration(tags):
    log = ReportLog()
    for tag in tags:
        for i in range(30):
            log.append(
                TagReadReport(
                    epc=f"E-{tag}", tag_index=tag, timestamp=i * 0.05,
                    phase_rad=1.0, rss_dbm=-40.0,
                )
            )
    return calibrate(log)


class TestDetectTroughs:
    def test_orders_by_time(self):
        tags = [LAYOUT.index_of(2, c) for c in range(5)]
        cal = _calibration(tags)
        log = _log_with_dips({t: 0.3 + 0.3 * i for i, t in enumerate(tags)})
        troughs = detect_troughs(log, cal)
        assert passage_order(troughs) == tuple(tags)

    def test_trough_time_accuracy(self):
        tag = LAYOUT.index_of(2, 2)
        cal = _calibration([tag])
        log = _log_with_dips({tag: 1.0})
        troughs = detect_troughs(log, cal)
        assert len(troughs) == 1
        assert troughs[0].time == pytest.approx(1.0, abs=0.15)
        assert troughs[0].depth_db > 5.0

    def test_shallow_dips_rejected(self):
        tag = 0
        cal = _calibration([tag])
        log = _log_with_dips({tag: 1.0}, depth=1.0)
        assert detect_troughs(log, cal) == []

    def test_restrict_to(self):
        tags = [0, 1]
        cal = _calibration(tags)
        log = _log_with_dips({0: 0.5, 1: 1.0})
        troughs = detect_troughs(log, cal, restrict_to=[1])
        assert [t.tag_index for t in troughs] == [1]


class TestEstimateDirection:
    def _troughs(self, cells_times):
        return [
            Trough(LAYOUT.index_of(r, c), t, 8.0) for (r, c), t in cells_times
        ]

    def test_hbar_forward(self):
        troughs = self._troughs([((2, c), 0.2 * c) for c in range(5)])
        d, conf = estimate_direction(StrokeKind.HBAR, troughs, LAYOUT)
        assert d is Direction.FORWARD
        assert conf > 0.9

    def test_hbar_reverse(self):
        troughs = self._troughs([((2, 4 - c), 0.2 * c) for c in range(5)])
        d, _ = estimate_direction(StrokeKind.HBAR, troughs, LAYOUT)
        assert d is Direction.REVERSE

    def test_vbar_forward_is_downward(self):
        troughs = self._troughs([((r, 2), 0.2 * r) for r in range(5)])
        d, _ = estimate_direction(StrokeKind.VBAR, troughs, LAYOUT)
        assert d is Direction.FORWARD

    def test_click_has_no_direction(self):
        d, conf = estimate_direction(StrokeKind.CLICK, [], LAYOUT)
        assert d is Direction.FORWARD
        assert conf == 0.0

    def test_too_few_troughs(self):
        troughs = self._troughs([((2, 0), 0.0)])
        _, conf = estimate_direction(StrokeKind.HBAR, troughs, LAYOUT)
        assert conf == 0.0

    def test_arc_c_forward_matches_skeleton(self):
        # ⊂ drawn FORWARD: upper tip -> left side -> lower tip.
        cells = [((0, 2), 0.0), ((1, 0), 0.3), ((2, 0), 0.5), ((3, 0), 0.7), ((4, 2), 1.0)]
        d, _ = estimate_direction(
            StrokeKind.ARC_C, self._troughs(cells), LAYOUT, ArcOpening.RIGHT
        )
        assert d is Direction.FORWARD

    def test_arc_d_forward_matches_skeleton(self):
        # ⊃ FORWARD starts at its *lower* tip per the skeleton generator.
        cells = [((4, 2), 0.0), ((3, 4), 0.3), ((2, 4), 0.5), ((1, 4), 0.7), ((0, 2), 1.0)]
        d, _ = estimate_direction(
            StrokeKind.ARC_D, self._troughs(cells), LAYOUT, ArcOpening.LEFT
        )
        assert d is Direction.FORWARD


class TestTroughPath:
    def test_line_path_straight(self):
        troughs = [Trough(LAYOUT.index_of(2, c), 0.2 * c, 8.0) for c in range(5)]
        path = trough_path(troughs, LAYOUT)
        assert path.straightness == pytest.approx(1.0)
        assert path.chord == (4.0, 0.0)

    def test_arc_path_curved(self):
        cells = [(0, 2), (1, 0), (2, 0), (3, 0), (4, 2)]
        troughs = [Trough(LAYOUT.index_of(r, c), 0.3 * i, 8.0) for i, (r, c) in enumerate(cells)]
        path = trough_path(troughs, LAYOUT)
        assert path.straightness < 0.8
        # ⊂ opens right.
        assert path.opening[0] > 0.3

    def test_too_few_points(self):
        assert trough_path([], LAYOUT) is None
        assert trough_path([Trough(0, 0.0, 8.0)], LAYOUT) is None

    def test_two_point_path(self):
        troughs = [Trough(LAYOUT.index_of(2, 0), 0.0, 8.0), Trough(LAYOUT.index_of(2, 3), 0.6, 8.0)]
        path = trough_path(troughs, LAYOUT)
        assert path.n == 2
        assert path.chord == (3.0, 0.0)
        assert path.time_spread == pytest.approx(0.6)

    def test_weak_troughs_excluded_from_geometry(self):
        strong = [Trough(LAYOUT.index_of(2, c), 0.2 * c, 10.0) for c in range(4)]
        weak = [Trough(LAYOUT.index_of(0, 0), 0.35, 2.9)]
        path = trough_path(strong + weak, LAYOUT, DirectionConfig())
        assert path.n == 4  # the weak outlier didn't zigzag the path
        # ...but it still counts towards the overall spatial footprint.
        assert path.spatial_extent >= 3.0
