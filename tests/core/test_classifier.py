import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, classify_shape
from repro.core.direction import Trough, trough_path
from repro.core.imaging import BinaryMap, GreyMap
from repro.motion.strokes import ArcOpening, StrokeKind
from repro.physics.geometry import GridLayout

LAYOUT = GridLayout()


def _maps(cells):
    values = np.zeros((5, 5))
    mask = np.zeros((5, 5), dtype=bool)
    for r, c in cells:
        mask[r, c] = True
        values[r, c] = 1.0
    return GreyMap(values, LAYOUT), BinaryMap(mask, 0.5, LAYOUT)


def _path(cells_times):
    troughs = [
        Trough(tag_index=LAYOUT.index_of(r, c), time=t, depth_db=8.0)
        for (r, c), t in cells_times
    ]
    return trough_path(troughs, LAYOUT)


def test_empty_map():
    grey, binary = _maps([])
    assert classify_shape(grey, binary) is None


def test_click_compact_blob_no_path():
    grey, binary = _maps([(2, 2)])
    decision = classify_shape(grey, binary)
    assert decision.kind is StrokeKind.CLICK


def test_click_with_stationary_troughs():
    grey, binary = _maps([(2, 2), (2, 3), (3, 2)])
    path = _path([((2, 2), 1.0), ((2, 3), 1.05), ((3, 2), 1.1)])
    decision = classify_shape(grey, binary, path=path, window_s=1.5)
    assert decision.kind is StrokeKind.CLICK


def test_hbar_from_full_row():
    grey, binary = _maps([(2, c) for c in range(5)])
    path = _path([((2, c), 0.2 * c) for c in range(5)])
    decision = classify_shape(grey, binary, path=path, window_s=1.0)
    assert decision.kind is StrokeKind.HBAR
    assert decision.line_angle_deg == pytest.approx(0.0, abs=10.0)


def test_vbar_from_full_column():
    grey, binary = _maps([(r, 2) for r in range(5)])
    path = _path([((r, 2), 0.2 * r) for r in range(5)])
    decision = classify_shape(grey, binary, path=path, window_s=1.0)
    assert decision.kind is StrokeKind.VBAR


def test_slash_diagonal():
    cells = [(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)]
    grey, binary = _maps(cells)
    path = _path([(c, 0.2 * i) for i, c in enumerate(cells)])
    decision = classify_shape(grey, binary, path=path, window_s=1.0)
    assert decision.kind is StrokeKind.SLASH


def test_arc_c_from_ring():
    cells = [(0, 2), (0, 1), (1, 0), (2, 0), (3, 0), (4, 1), (4, 2)]
    grey, binary = _maps(cells)
    path = _path([(c, 0.2 * i) for i, c in enumerate(cells)])
    decision = classify_shape(grey, binary, path=path, window_s=1.5)
    assert decision.kind is StrokeKind.ARC_C
    assert decision.opening is ArcOpening.RIGHT
    assert decision.token == "arc:right"


def test_arc_d_from_ring():
    cells = [(0, 2), (0, 3), (1, 4), (2, 4), (3, 4), (4, 3), (4, 2)]
    grey, binary = _maps(cells)
    path = _path([(c, 0.2 * i) for i, c in enumerate(cells)])
    decision = classify_shape(grey, binary, path=path, window_s=1.5)
    assert decision.kind is StrokeKind.ARC_D
    assert decision.opening is ArcOpening.LEFT


def test_decisively_straight_path_vetoes_arc():
    # Image looks thick/curvy, but the trough path is perfectly straight.
    cells = [(2, 0), (2, 1), (1, 1), (2, 2), (3, 2), (2, 3), (2, 4), (1, 3)]
    grey, binary = _maps(cells)
    path = _path([((2, c), 0.2 * c) for c in range(5)])
    decision = classify_shape(grey, binary, path=path, window_s=1.0)
    assert decision.kind in (StrokeKind.HBAR, StrokeKind.SLASH, StrokeKind.BACKSLASH)


def test_degenerate_blob_uses_chord_angle():
    # 2-cell blob would read as HBAR from image moments (angle 0), but the
    # trough chord is vertical.
    grey, binary = _maps([(1, 2), (2, 2)])
    path = _path([((0, 2), 0.0), ((2, 2), 0.4), ((4, 2), 0.8)])
    decision = classify_shape(grey, binary, path=path, window_s=1.0)
    assert decision.kind is StrokeKind.VBAR


def test_config_is_respected():
    grey, binary = _maps([(2, 2), (2, 3)])
    strict = ClassifierConfig(click_max_span=1, click_max_extent=0.5)
    decision = classify_shape(grey, binary, strict)
    assert decision.kind is not StrokeKind.CLICK
