import numpy as np
import pytest

from repro.core.imaging import GreyMap
from repro.core.otsu import (
    between_class_variance,
    binarize,
    binarize_fixed,
    otsu_threshold,
)
from repro.physics.geometry import GridLayout


def test_bimodal_split():
    values = [0.1] * 20 + [0.9] * 5
    thr = otsu_threshold(values)
    assert 0.1 < thr < 0.9


def test_constant_input_returns_constant():
    assert otsu_threshold([0.5] * 10) == 0.5


def test_empty_rejected():
    with pytest.raises(ValueError):
        otsu_threshold([])


def test_bins_validated():
    with pytest.raises(ValueError):
        otsu_threshold([1.0, 2.0], bins=1)


def test_threshold_maximises_between_class_variance():
    rng = np.random.default_rng(0)
    values = np.concatenate([rng.normal(1, 0.2, 200), rng.normal(5, 0.3, 60)])
    thr = otsu_threshold(values, bins=128)
    best = between_class_variance(values, thr)
    for candidate in np.linspace(values.min() + 0.01, values.max() - 0.01, 60):
        assert between_class_variance(values, candidate) <= best * 1.02


def test_binarize_on_grid():
    layout = GridLayout()
    values = np.full((5, 5), 0.1)
    values[:, 2] = 1.0  # third column lit
    binary = binarize(GreyMap(values, layout))
    assert binary.foreground_count() == 5
    assert all(c == 2 for _, c in binary.foreground_cells())


def test_binarize_fixed():
    layout = GridLayout()
    values = np.arange(25, dtype=float).reshape(5, 5)
    binary = binarize_fixed(GreyMap(values, layout), threshold=20.0)
    assert binary.foreground_count() == 4
    assert binary.threshold == 20.0


def test_between_class_variance_degenerate_split():
    values = [1.0, 2.0, 3.0]
    assert between_class_variance(values, 0.0) == 0.0  # all foreground
    assert between_class_variance(values, 5.0) == 0.0  # all background


def test_otsu_scale_invariance():
    values = np.array([0.1] * 20 + [0.9] * 5)
    t1 = otsu_threshold(values)
    t2 = otsu_threshold(values * 10.0)
    assert t2 == pytest.approx(t1 * 10.0, rel=0.05)
