import numpy as np
import pytest

from repro.core.calibration import calibrate
from repro.core.segmentation import (
    SegmentationConfig,
    auto_threshold,
    frame_rms,
    segment_strokes,
    window_std,
)
from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.rfid.reports import ReportLog, TagReadReport
from repro.units import TWO_PI


def test_window_std_sliding():
    rms = np.array([0.0, 0.0, 0.0, 5.0, 5.0, 5.0])
    stds = window_std(rms, 3)
    assert stds[0] == 0.0
    assert stds[1] > 1.0  # window [1,4) sees the jump
    assert stds[-1] == 0.0  # single trailing frame


def test_frame_rms_empty_log(shared_runner):
    times, rms = frame_rms(ReportLog(), shared_runner.pad.calibration)
    assert times.size == 0 and rms.size == 0


def test_frame_rms_quiet_vs_active(shared_runner):
    script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
    log = shared_runner.run_script(script)
    times, rms = frame_rms(log, shared_runner.pad.calibration)
    t0, t1 = script.stroke_intervals()[0]
    active = rms[(times >= t0) & (times < t1)]
    quiet = rms[times < t0 - 0.15]
    assert active.mean() > 10 * max(quiet.mean(), 1e-3)


def test_single_motion_segmented(shared_runner):
    script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
    log = shared_runner.run_script(script)
    windows = segment_strokes(log, shared_runner.pad.calibration,
                              shared_runner.pad.config.segmentation)
    assert len(windows) == 1
    t0, t1 = script.stroke_intervals()[0]
    assert windows[0].t0 < t0 + 0.3
    assert windows[0].t1 > t1 - 0.3


def test_letter_h_three_windows(shared_runner):
    script = script_for_letter("H", shared_runner.rng)
    log = shared_runner.run_script(script)
    windows = segment_strokes(log, shared_runner.pad.calibration,
                              shared_runner.pad.config.segmentation)
    assert len(windows) == 3


def test_static_log_no_windows(shared_runner):
    log = shared_runner.reader.collect_static(2.0)
    windows = segment_strokes(log, shared_runner.pad.calibration,
                              shared_runner.pad.config.segmentation)
    assert windows == []


def test_min_stroke_filter(shared_runner):
    config = SegmentationConfig(
        threshold=shared_runner.pad.config.segmentation.threshold,
        noise_floor=shared_runner.pad.config.segmentation.noise_floor,
        min_stroke_s=99.0,
    )
    script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
    log = shared_runner.run_script(script)
    assert segment_strokes(log, shared_runner.pad.calibration, config) == []


def test_auto_threshold_above_static_noise(shared_runner):
    static = shared_runner.reader.collect_static(3.0)
    thr = auto_threshold(static, shared_runner.pad.calibration)
    times, rms = frame_rms(static, shared_runner.pad.calibration)
    stds = window_std(rms, 5)
    assert thr > np.percentile(stds, 95)


def test_auto_threshold_short_capture_rejected(shared_runner):
    static = shared_runner.reader.collect_static(0.2)
    with pytest.raises(ValueError):
        auto_threshold(static, shared_runner.pad.calibration)


def test_config_validation():
    with pytest.raises(ValueError):
        SegmentationConfig(frame_s=0.0)
    with pytest.raises(ValueError):
        SegmentationConfig(window_frames=1)
    with pytest.raises(ValueError):
        SegmentationConfig(threshold=-0.1)


# ----------------------------------------------------------------------
# Cross-tile window stitching (workspace layer, DESIGN.md §15).


def _w(t0, t1, peak=1.0):
    from repro.core.events import SegmentedWindow

    return SegmentedWindow(t0=t0, t1=t1, peak_std_rms=peak)


def test_stitch_empty_and_single_tile_passthrough():
    from repro.core.segmentation import stitch_windows

    assert stitch_windows([]) == []
    assert stitch_windows([[], []]) == []
    windows = [_w(0.1, 0.5), _w(1.0, 1.4)]
    assert stitch_windows([windows]) == windows


def test_stitch_merges_overlapping_windows_across_tiles():
    from repro.core.segmentation import stitch_windows

    merged = stitch_windows([[_w(0.1, 0.6, peak=2.0)], [_w(0.4, 0.9, peak=3.0)]])
    assert len(merged) == 1
    assert merged[0].t0 == 0.1
    assert merged[0].t1 == 0.9
    assert merged[0].peak_std_rms == 3.0  # max over the merged pair


def test_stitch_merges_nearly_adjacent_keeps_distant():
    from repro.core.segmentation import stitch_windows

    gap = SegmentationConfig().merge_gap_s
    merged = stitch_windows(
        [[_w(0.0, 0.5), _w(5.0, 5.5)], [_w(0.5 + gap / 2, 1.0)]]
    )
    assert len(merged) == 2
    assert (merged[0].t0, merged[0].t1) == (0.0, 1.0)
    assert (merged[1].t0, merged[1].t1) == (5.0, 5.5)


def test_stitch_handles_nested_windows():
    from repro.core.segmentation import stitch_windows

    merged = stitch_windows([[_w(0.0, 2.0, peak=1.0)], [_w(0.5, 1.0, peak=4.0)]])
    assert merged == [_w(0.0, 2.0, peak=4.0)]


def test_stitch_output_sorted_and_disjoint():
    from repro.core.segmentation import stitch_windows

    rng = np.random.default_rng(5)
    tiles = []
    for _ in range(3):
        starts = np.sort(rng.uniform(0.0, 20.0, size=8))
        tiles.append([_w(float(t0), float(t0 + rng.uniform(0.2, 1.5))) for t0 in starts])
    gap = SegmentationConfig().merge_gap_s
    merged = stitch_windows(tiles)
    for prev, cur in zip(merged, merged[1:]):
        assert cur.t0 > prev.t1 + gap
    # Every input window lies inside some stitched window.
    for tile in tiles:
        for w in tile:
            assert any(m.t0 <= w.t0 and w.t1 <= m.t1 for m in merged)
