import pytest

from repro.core.events import LetterResult, SegmentedWindow
from repro.core.words import (
    WordDecoder,
    WordRecognizer,
    cluster_windows_into_letters,
)


def _w(t0, t1):
    return SegmentedWindow(t0, t1, 1.0)


def _letter(letter, candidates):
    return LetterResult(letter=letter, strokes=(), candidates=tuple(candidates))


class TestClustering:
    def test_single_letter(self):
        groups = cluster_windows_into_letters([_w(0, 1), _w(1.8, 2.8)])
        assert len(groups) == 1

    def test_two_letters(self):
        groups = cluster_windows_into_letters([_w(0, 1), _w(3.0, 4.0)])
        assert len(groups) == 2

    def test_unsorted_input(self):
        groups = cluster_windows_into_letters([_w(3.0, 4.0), _w(0, 1)])
        assert len(groups) == 2
        assert groups[0][0].t0 == 0

    def test_empty(self):
        assert cluster_windows_into_letters([]) == []

    def test_threshold_respected(self):
        windows = [_w(0, 1), _w(2.2, 3.2)]
        assert len(cluster_windows_into_letters(windows, letter_gap_s=1.0)) == 2
        assert len(cluster_windows_into_letters(windows, letter_gap_s=1.5)) == 1


class TestDecoder:
    def test_no_lexicon_returns_raw(self):
        decoder = WordDecoder()
        result = decoder.decode([_letter("H", [("H", 0.1)]), _letter("I", [("I", 0.1)])])
        assert result.raw == "HI"
        assert result.corrected is None
        assert result.text == "HI"

    def test_lexicon_passthrough_for_clean_reading(self):
        decoder = WordDecoder(lexicon=["HI", "HO"])
        result = decoder.decode(
            [_letter("H", [("H", 0.1)]), _letter("I", [("I", 0.1), ("O", 0.9)])]
        )
        assert result.text == "HI"

    def test_lexicon_fixes_missing_letter(self):
        decoder = WordDecoder(lexicon=["GATE", "EXIT"])
        letters = [
            _letter(None, [("B", 0.7), ("G", 0.8)]),
            _letter("A", [("A", 0.1)]),
            _letter("T", [("T", 0.1)]),
            _letter("E", [("E", 0.1)]),
        ]
        result = decoder.decode(letters)
        assert result.raw == "?ATE"
        assert result.corrected == "GATE"

    def test_length_mismatch_keeps_raw(self):
        decoder = WordDecoder(lexicon=["LONGWORD"])
        result = decoder.decode([_letter("H", [("H", 0.1)])])
        assert result.corrected is None

    def test_miss_cost_punishes_absent_letters(self):
        decoder = WordDecoder(lexicon=["AB", "AZ"])
        letters = [
            _letter("A", [("A", 0.1)]),
            _letter("B", [("B", 0.2)]),  # Z never appears
        ]
        assert decoder.decode(letters).corrected == "AB"

    def test_empty_letters(self):
        result = WordDecoder(lexicon=["X"]).decode([])
        assert result.raw == ""
        assert result.corrected is None


class TestWordRecognizerEndToEnd:
    def test_two_letter_word(self, shared_runner):
        import numpy as np

        from repro.motion.script import script_for_word

        script = script_for_word("HI", shared_runner.rng)
        log = shared_runner.run_script(script)
        recognizer = WordRecognizer(
            shared_runner.pad, decoder=WordDecoder(lexicon=["HI", "LO"])
        )
        result = recognizer.recognize_word(log)
        assert len(result.letters) == 2
        assert result.text == "HI"
