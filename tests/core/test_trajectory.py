import numpy as np
import pytest

from repro.core.direction import Trough, detect_troughs
from repro.core.trajectory import (
    TrajectoryEstimate,
    reconstruct_trajectory,
    trajectory_error,
)
from repro.motion.script import script_for_motion
from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.physics.geometry import GridLayout, Vec3

LAYOUT = GridLayout()


def _troughs(cells_times, depth=8.0):
    return [Trough(LAYOUT.index_of(r, c), t, depth) for (r, c), t in cells_times]


class TestReconstruct:
    def test_too_few_anchors(self):
        assert reconstruct_trajectory([], LAYOUT) is None
        assert reconstruct_trajectory(_troughs([((2, 2), 1.0)]), LAYOUT) is None

    def test_straight_sweep(self):
        troughs = _troughs([((2, c), 0.25 * c) for c in range(5)])
        est = reconstruct_trajectory(troughs, LAYOUT)
        assert est is not None
        # Path runs along y ~= 0 from left to right.
        assert est.points[0, 0] < est.points[-1, 0]
        assert np.all(np.abs(est.points[:, 1]) < 0.02)

    def test_position_at_interpolates(self):
        troughs = _troughs([((2, 0), 0.0), ((2, 4), 1.0)])
        est = reconstruct_trajectory(troughs, LAYOUT, smooth=1)
        x_mid, y_mid = est.position_at(0.5)
        assert x_mid == pytest.approx(0.0, abs=0.01)
        assert y_mid == pytest.approx(0.0, abs=0.01)

    def test_position_clamped_outside_span(self):
        troughs = _troughs([((2, 0), 0.0), ((2, 4), 1.0)])
        est = reconstruct_trajectory(troughs, LAYOUT, smooth=1)
        assert est.position_at(-5.0) == est.position_at(0.0)

    def test_path_length_of_sweep(self):
        troughs = _troughs([((2, c), 0.25 * c) for c in range(5)])
        est = reconstruct_trajectory(troughs, LAYOUT, smooth=1)
        assert est.path_length() == pytest.approx(0.24, abs=0.03)

    def test_unsorted_anchor_input(self):
        cells = [((2, c), 0.25 * c) for c in range(5)]
        est_sorted = reconstruct_trajectory(_troughs(cells), LAYOUT)
        est_shuffled = reconstruct_trajectory(_troughs(cells[::-1]), LAYOUT)
        assert np.allclose(est_sorted.points, est_shuffled.points)


class TestError:
    def test_perfect_reference(self):
        troughs = _troughs([((2, 0), 0.0), ((2, 4), 1.0)])
        est = reconstruct_trajectory(troughs, LAYOUT, smooth=1)
        reference = [
            (t, Vec3(-0.12 + 0.24 * t, 0.0, 0.03)) for t in np.linspace(0, 1, 20)
        ]
        assert trajectory_error(est, reference) < 0.01

    def test_no_overlap_raises(self):
        troughs = _troughs([((2, 0), 0.0), ((2, 4), 1.0)])
        est = reconstruct_trajectory(troughs, LAYOUT)
        with pytest.raises(ValueError):
            trajectory_error(est, [(5.0, Vec3(0, 0, 0))])


class TestEndToEnd:
    def test_tracks_a_real_stroke_within_a_tag_pitch(self, shared_runner):
        script = script_for_motion(
            Motion(StrokeKind.HBAR, Direction.FORWARD), shared_runner.rng
        )
        log = shared_runner.run_script(script)
        cal = shared_runner.pad.calibration
        troughs = detect_troughs(log, cal)
        est = reconstruct_trajectory(troughs, shared_runner.scenario.layout)
        assert est is not None
        reference = [(p.t, p.position) for p in script.true_trajectory(dt=0.05)]
        error = trajectory_error(est, reference)
        # Tag-pitch-resolution tracking: mean error under ~one pitch.
        assert error < 0.07
