import numpy as np
import pytest

from repro.core.calibration import calibrate
from repro.core.suppression import accumulative_differences, disturbance_score
from repro.rfid.reports import ReportLog, TagReadReport
from repro.units import TWO_PI


def _log(phases_by_tag, dt=0.06):
    log = ReportLog()
    for tag, phases in phases_by_tag.items():
        for i, p in enumerate(phases):
            log.append(
                TagReadReport(
                    epc=f"E-{tag}", tag_index=tag,
                    timestamp=i * dt + tag * 0.001,
                    phase_rad=float(np.mod(p, TWO_PI)), rss_dbm=-40.0,
                )
            )
    return log


@pytest.fixture()
def calibration(rng):
    static = {
        0: np.mod(rng.normal(1.0, 0.02, 60), TWO_PI),
        1: np.mod(rng.normal(4.0, 0.02, 60), TWO_PI),
        2: np.mod(rng.normal(0.01, 0.02, 60), TWO_PI),  # near the boundary
    }
    return calibrate(_log(static))


def test_disturbed_tag_scores_higher(calibration, rng):
    motion = {
        0: 1.0 + 1.5 * np.sin(np.linspace(0, 6, 40)),          # disturbed
        1: np.mod(rng.normal(4.0, 0.02, 40), TWO_PI),          # static
        2: np.mod(rng.normal(0.01, 0.02, 40), TWO_PI),         # static
    }
    result = accumulative_differences(_log(motion), calibration)
    assert result.suppressed[0] > 3.0 * result.suppressed[1]
    assert result.suppressed[0] > 3.0 * result.suppressed[2]


def test_boundary_tag_raw_is_inflated(calibration, rng):
    # Tag 2's static phase sits at ~0: wrapped reports flicker between
    # ~0 and ~2*pi, so the *raw* accumulative difference explodes while
    # the suppressed one stays small.
    quiet = {
        1: np.mod(rng.normal(4.0, 0.03, 40), TWO_PI),
        2: np.mod(rng.normal(0.0, 0.03, 40), TWO_PI),
    }
    result = accumulative_differences(_log(quiet), calibration)
    assert result.raw[2] > 5.0 * result.raw[1]
    assert result.suppressed[2] < 3.0 * result.suppressed[1]


def test_unread_calibrated_tags_zero(calibration):
    result = accumulative_differences(_log({0: [1.0] * 10}), calibration)
    assert result.suppressed[1] == 0.0
    assert result.read_counts[1] == 0


def test_uncalibrated_tags_ignored(calibration):
    result = accumulative_differences(_log({9: [1.0, 2.0, 3.0]}), calibration)
    assert 9 not in result.suppressed


def test_window_slicing(calibration):
    motion = {0: [1.0 + (0.5 if 10 <= i < 20 else 0.0) * np.sin(i) for i in range(40)]}
    full = accumulative_differences(_log(motion), calibration)
    window = accumulative_differences(_log(motion), calibration, t0=2.0, t1=2.2)
    assert window.suppressed[0] <= full.suppressed[0]


def test_weighting_divides_by_bias(rng):
    # Same disturbance on two tags; the noisier-in-calibration tag must
    # score lower after weighting.
    static = {
        0: np.mod(rng.normal(1.0, 0.01, 80), TWO_PI),
        1: np.mod(rng.normal(2.0, 0.20, 80), TWO_PI),
    }
    cal = calibrate(_log(static))
    motion = {
        0: 1.0 + 0.8 * np.sin(np.linspace(0, 6, 40)),
        1: 2.0 + 0.8 * np.sin(np.linspace(0, 6, 40)),
    }
    result = accumulative_differences(_log(motion), cal)
    assert result.suppressed[0] > result.suppressed[1]


def test_disturbance_score_positive_under_motion(calibration):
    motion = {0: 1.0 + np.sin(np.linspace(0, 6, 40))}
    result = accumulative_differences(_log(motion), calibration)
    assert disturbance_score(result) > 0.0
