import numpy as np
import pytest

from repro.core.events import LetterResult, StrokeObservation
from repro.core.grammar import TreeGrammar
from repro.core.holistic import (
    HolisticRecognizer,
    HybridRecognizer,
    fuse_letter_image,
    render_template,
)
from repro.core.imaging import BinaryMap, GreyMap
from repro.motion.letters import ALPHABET
from repro.motion.strokes import Direction, StrokeKind
from repro.physics.geometry import GridLayout

LAYOUT = GridLayout()


def _stroke_from_cells(cells, token="vbar"):
    values = np.zeros((5, 5))
    mask = np.zeros((5, 5), dtype=bool)
    for r, c in cells:
        mask[r, c] = True
        values[r, c] = 1.0
    grey = GreyMap(values, LAYOUT)
    return StrokeObservation(
        kind=StrokeKind.VBAR, direction=Direction.FORWARD, token=token,
        t0=0.0, t1=1.0, confidence=1.0, grey=grey,
        binary=BinaryMap(mask, 0.5, LAYOUT),
    )


class TestTemplates:
    def test_template_normalised(self):
        for letter in "AHOZ":
            t = render_template(letter, LAYOUT)
            assert t.shape == (5, 5)
            assert t.max() == pytest.approx(1.0)
            assert t.min() >= 0.0

    def test_templates_distinct(self):
        a = render_template("I", LAYOUT)
        b = render_template("O", LAYOUT)
        assert not np.allclose(a, b)

    def test_i_template_concentrated_on_centre_column(self):
        t = render_template("I", LAYOUT)
        assert t[:, 2].mean() > 2.0 * t[:, 0].mean()


class TestFuse:
    def test_fuse_sums_normalised_maps(self):
        a = _stroke_from_cells([(r, 1) for r in range(5)])
        b = _stroke_from_cells([(2, c) for c in range(5)])
        fused = fuse_letter_image([a, b], LAYOUT)
        assert fused.values[2, 1] == pytest.approx(2.0)
        assert fused.values[0, 1] == pytest.approx(1.0)

    def test_fuse_skips_strokes_without_maps(self):
        obs = StrokeObservation(
            kind=StrokeKind.CLICK, direction=Direction.FORWARD, token="click",
            t0=0.0, t1=1.0, confidence=1.0,
        )
        fused = fuse_letter_image([obs], LAYOUT)
        assert fused.values.sum() == 0.0


class TestHolisticRecognizer:
    def test_recognises_clean_h(self):
        rec = HolisticRecognizer(LAYOUT)
        strokes = [
            _stroke_from_cells([(r, 1) for r in range(5)]),
            _stroke_from_cells([(2, 1), (2, 2), (2, 3)]),
            _stroke_from_cells([(r, 3) for r in range(5)]),
        ]
        result = rec.recognize(strokes)
        assert result.letter == "H"

    def test_recognises_from_fused_image_despite_wrong_tokens(self):
        # Token corruption is irrelevant to the holistic path.
        rec = HolisticRecognizer(LAYOUT)
        strokes = [
            _stroke_from_cells([(r, 2) for r in range(5)], token="arc:left"),
        ]
        result = rec.recognize(strokes)
        assert result.letter == "I"

    def test_empty_rejected(self):
        rec = HolisticRecognizer(LAYOUT)
        result = rec.recognize([])
        assert result.letter is None

    def test_candidates_sorted_descending(self):
        rec = HolisticRecognizer(LAYOUT)
        strokes = [_stroke_from_cells([(r, 2) for r in range(5)])]
        result = rec.recognize(strokes)
        scores = [s for _, s in result.candidates]
        assert scores == sorted(scores, reverse=True)


class TestHybrid:
    def test_grammar_result_kept_when_accepted(self):
        grammar = TreeGrammar()
        rec = HybridRecognizer(grammar, HolisticRecognizer(LAYOUT))
        strokes = [_stroke_from_cells([(r, 2) for r in range(5)], token="vbar")]
        result = rec.recognize(strokes)
        assert result.letter == "I"

    def test_holistic_fallback_on_grammar_reject(self):
        # All tokens corrupted to clicks -> the grammar rejects, but the
        # fused image still reads as H.
        grammar = TreeGrammar(accept_threshold=0.05)
        rec = HybridRecognizer(grammar, HolisticRecognizer(LAYOUT))
        strokes = [
            _stroke_from_cells([(r, 1) for r in range(5)], token="click"),
            _stroke_from_cells([(2, 1), (2, 2), (2, 3)], token="click"),
            _stroke_from_cells([(r, 3) for r in range(5)], token="click"),
        ]
        result = rec.recognize(strokes)
        assert result.letter == "H"
