import math

import numpy as np
import pytest

from repro.core.calibration import (
    StaticCalibration,
    calibrate,
    circular_mean,
    circular_std,
)
from repro.rfid.reports import ReportLog, TagReadReport
from repro.units import TWO_PI


def _static_log(phases_by_tag: dict, rss: float = -40.0) -> ReportLog:
    log = ReportLog()
    for tag, phases in phases_by_tag.items():
        for i, p in enumerate(phases):
            log.append(
                TagReadReport(
                    epc=f"E-{tag}", tag_index=tag, timestamp=i * 0.05 + tag * 0.001,
                    phase_rad=p % TWO_PI, rss_dbm=rss,
                )
            )
    return log


class TestCircularStats:
    def test_mean_simple(self):
        assert circular_mean(np.array([1.0, 1.2, 0.8])) == pytest.approx(1.0)

    def test_mean_across_boundary(self):
        phases = np.array([0.1, TWO_PI - 0.1])
        mean = circular_mean(phases)
        assert min(mean, TWO_PI - mean) < 1e-6

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))

    def test_std_concentrated_matches_linear(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(3.0, 0.05, 2000)
        assert circular_std(np.mod(samples, TWO_PI)) == pytest.approx(0.05, rel=0.1)

    def test_std_across_boundary(self):
        rng = np.random.default_rng(0)
        samples = np.mod(rng.normal(0.0, 0.05, 2000), TWO_PI)
        assert circular_std(samples) == pytest.approx(0.05, rel=0.1)

    def test_std_uniform_saturates(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0, TWO_PI, 5000)
        assert circular_std(samples) > 1.5


class TestCalibrate:
    def test_per_tag_statistics(self):
        log = _static_log({0: [1.0] * 20, 1: [2.0] * 20})
        cal = calibrate(log)
        assert cal.central_phase(0) == pytest.approx(1.0)
        assert cal.central_phase(1) == pytest.approx(2.0)
        assert cal.tags[0].sample_count == 20

    def test_min_samples_enforced(self):
        log = _static_log({0: [1.0] * 3})
        with pytest.raises(ValueError):
            calibrate(log, min_samples=5)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            calibrate(ReportLog())

    def test_bias_floor_guards_weights(self):
        log = _static_log({0: [1.0] * 20, 1: [2.0] * 20})  # zero variance
        cal = calibrate(log)
        weights = cal.weights()
        assert all(w > 0 for w in weights.values())
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_noisier_tag_gets_larger_weight(self, rng):
        quiet = np.mod(rng.normal(1.0, 0.01, 50), TWO_PI)
        noisy = np.mod(rng.normal(4.0, 0.3, 50), TWO_PI)
        cal = calibrate(_static_log({0: quiet.tolist(), 1: noisy.tolist()}))
        weights = cal.weights()
        assert weights[1] > weights[0]

    def test_residual_series_centred(self, rng):
        phases = np.mod(rng.normal(6.1, 0.05, 50), TWO_PI)
        cal = calibrate(_static_log({0: phases.tolist()}))
        residual = cal.residual_series(0, phases)
        assert np.all(np.abs(residual) < 0.4)

    def test_mean_rss_recorded(self):
        log = _static_log({0: [1.0] * 10}, rss=-37.5)
        cal = calibrate(log)
        assert cal.mean_rss(0) == -37.5


def test_calibration_from_simulated_reader(shared_runner):
    cal = shared_runner.pad.calibration
    assert len(cal.tags) == 25
    # Static biases are small (fractions of a radian), not garbage.
    assert all(tc.deviation_bias < 1.0 for tc in cal.tags.values())


def test_empty_calibration_rejected():
    with pytest.raises(ValueError):
        StaticCalibration(tags={})
