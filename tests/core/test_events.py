import pytest

from repro.core.events import LetterResult, SegmentedWindow, StrokeObservation
from repro.motion.strokes import Direction, StrokeKind


def _obs(kind=StrokeKind.HBAR, direction=Direction.FORWARD, token="hbar"):
    return StrokeObservation(
        kind=kind, direction=direction, token=token,
        t0=1.0, t1=2.5, confidence=0.8,
    )


class TestStrokeObservation:
    def test_duration(self):
        assert _obs().duration == 1.5

    def test_label_directions(self):
        assert _obs(direction=Direction.FORWARD).label == "−+"
        assert _obs(direction=Direction.REVERSE).label == "−-"

    def test_click_label_has_no_arrow(self):
        obs = _obs(kind=StrokeKind.CLICK, token="click")
        assert obs.label == "⊙"


class TestSegmentedWindow:
    def test_duration(self):
        assert SegmentedWindow(0.5, 1.7, 1.0).duration == pytest.approx(1.2)


class TestLetterResult:
    def test_stroke_tokens(self):
        result = LetterResult(
            letter="T",
            strokes=(_obs(token="hbar"), _obs(kind=StrokeKind.VBAR, token="vbar")),
        )
        assert result.stroke_tokens == ("hbar", "vbar")

    def test_empty(self):
        result = LetterResult(letter=None, strokes=())
        assert result.stroke_tokens == ()
        assert result.candidates == ()
