import math

import numpy as np
import pytest

from repro.core.unwrap import (
    fold_to_pi,
    largest_jump,
    total_variation,
    unwrap,
    unwrap_residual,
)
from repro.units import TWO_PI


class TestFold:
    def test_identity_inside_branch(self):
        assert fold_to_pi(0.5) == pytest.approx(0.5)
        assert fold_to_pi(-3.0) == pytest.approx(-3.0)

    def test_folds_large_positive(self):
        assert fold_to_pi(TWO_PI - 0.1) == pytest.approx(-0.1)

    def test_folds_large_negative(self):
        assert fold_to_pi(-TWO_PI + 0.2) == pytest.approx(0.2)

    def test_pi_maps_to_pi(self):
        assert fold_to_pi(math.pi) == pytest.approx(math.pi)


class TestUnwrap:
    def test_smooth_series_unchanged(self):
        series = [1.0, 1.1, 1.2, 1.3]
        assert np.allclose(unwrap(series), series)

    def test_boundary_crossing_down(self):
        out = unwrap([0.1, TWO_PI - 0.1, TWO_PI - 0.3])
        assert out[1] == pytest.approx(-0.1)
        assert out[2] == pytest.approx(-0.3)

    def test_boundary_crossing_up(self):
        out = unwrap([TWO_PI - 0.1, 0.1, 0.3])
        assert out[1] == pytest.approx(TWO_PI + 0.1)

    def test_no_jump_exceeds_pi(self):
        rng = np.random.default_rng(0)
        wrapped = np.mod(np.cumsum(rng.normal(0, 0.8, 100)), TWO_PI)
        assert largest_jump(unwrap(wrapped)) <= math.pi + 1e-9

    def test_recovers_linear_trend(self):
        t = np.linspace(0, 12, 400)
        truth = 1.5 + 0.9 * t
        recovered = unwrap(np.mod(truth, TWO_PI))
        assert np.allclose(recovered, truth, atol=1e-9)

    def test_empty_and_single(self):
        assert unwrap([]).size == 0
        assert unwrap([2.0])[0] == 2.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            unwrap(np.zeros((2, 2)))


class TestResidual:
    def test_centred_near_zero(self):
        reference = 6.0
        wrapped = np.mod(reference + np.array([0.05, -0.03, 0.4, -0.4]), TWO_PI)
        residual = unwrap_residual(wrapped, reference)
        assert np.all(np.abs(residual) < 0.5)

    def test_reference_at_boundary(self):
        # Samples straddling 0/2*pi around a reference of ~0.
        wrapped = np.array([0.05, TWO_PI - 0.05, 0.1, TWO_PI - 0.1])
        residual = unwrap_residual(wrapped, 0.0)
        assert np.all(np.abs(residual) < 0.2)


class TestTotalVariation:
    def test_basic(self):
        assert total_variation([0.0, 1.0, 0.5]) == pytest.approx(1.5)

    def test_short_series(self):
        assert total_variation([1.0]) == 0.0
        assert total_variation([]) == 0.0

    def test_monotone_equals_range(self):
        series = np.linspace(0, 5, 50)
        assert total_variation(series) == pytest.approx(5.0)
