import numpy as np
import pytest

from repro.core.imaging import BinaryMap, GreyMap, render_grey_map
from repro.physics.geometry import GridLayout


def test_render_places_values_row_major():
    layout = GridLayout()
    grey = render_grey_map({0: 1.0, 12: 2.0, 24: 3.0}, layout)
    assert grey.values[0, 0] == 1.0
    assert grey.values[2, 2] == 2.0
    assert grey.values[4, 4] == 3.0


def test_missing_tags_render_zero():
    layout = GridLayout()
    grey = render_grey_map({0: 1.0}, layout)
    assert grey.values.sum() == 1.0


def test_negative_values_clamped():
    layout = GridLayout()
    grey = render_grey_map({0: -5.0, 1: 2.0}, layout)
    assert grey.values[0, 0] == 0.0


def test_loose_tags_ignored():
    layout = GridLayout()
    grey = render_grey_map({-1: 9.0, 3: 1.0}, layout)
    assert grey.values.max() == 1.0


def test_normalized_range():
    layout = GridLayout()
    grey = render_grey_map({i: float(i) for i in range(25)}, layout)
    norm = grey.normalized()
    assert norm.max() == 1.0
    assert norm.min() == 0.0


def test_normalized_all_zero():
    layout = GridLayout()
    grey = render_grey_map({}, layout)
    assert grey.normalized().sum() == 0.0


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        GreyMap(np.zeros((3, 3)), GridLayout())


def test_ascii_art_dimensions():
    layout = GridLayout()
    grey = render_grey_map({12: 1.0}, layout)
    art = grey.ascii_art()
    lines = art.split("\n")
    assert len(lines) == 5
    assert all(len(line) == 5 for line in lines)
    assert lines[2][2] != " "


def test_binary_map_helpers():
    layout = GridLayout()
    mask = np.zeros((5, 5), dtype=bool)
    mask[1, 3] = True
    binary = BinaryMap(mask, threshold=0.5, layout=layout)
    assert binary.foreground_cells() == [(1, 3)]
    assert binary.foreground_count() == 1
    assert binary.ascii_art().split("\n")[1][3] == "#"
