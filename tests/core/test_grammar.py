import math

import pytest

from repro.core.events import StrokeObservation
from repro.core.grammar import (
    TreeGrammar,
    letter_geometry,
    observed_geometry,
    stroke_pair_cost,
    token_distance,
)
from repro.core.imaging import BinaryMap, GreyMap
from repro.core.features import extract_features
from repro.motion.letters import LETTER_STROKES, shape_sequence
from repro.motion.strokes import ArcOpening, Direction, StrokeKind
from repro.physics.geometry import GridLayout

import numpy as np

LAYOUT = GridLayout()


def _obs(token, cells, t0=0.0, t1=1.0, angle=None):
    values = np.zeros((5, 5))
    mask = np.zeros((5, 5), dtype=bool)
    for r, c in cells:
        mask[r, c] = True
        values[r, c] = 1.0
    grey = GreyMap(values, LAYOUT)
    binary = BinaryMap(mask, 0.5, LAYOUT)
    kind = {
        "hbar": StrokeKind.HBAR, "vbar": StrokeKind.VBAR,
        "slash": StrokeKind.SLASH, "backslash": StrokeKind.BACKSLASH,
        "click": StrokeKind.CLICK,
    }.get(token, StrokeKind.ARC_C)
    opening = None
    if token.startswith("arc:"):
        opening = ArcOpening(token.split(":")[1])
    return StrokeObservation(
        kind=kind, direction=Direction.FORWARD, token=token, t0=t0, t1=t1,
        confidence=1.0, opening=opening,
        features=extract_features(grey, binary), grey=grey, binary=binary,
        line_angle_deg=angle,
    )


class TestTokenDistance:
    def test_exact_match(self):
        assert token_distance("vbar", "vbar") == 0.0
        assert token_distance("arc:left", "arc:left") == 0.0

    def test_arc_openings_graded(self):
        adjacent = token_distance("arc:left", "arc:up")
        opposite = token_distance("arc:left", "arc:right")
        assert 0.0 < adjacent < opposite <= 1.0

    def test_line_bins_graded(self):
        near = token_distance("vbar", "backslash")
        far = token_distance("vbar", "hbar")
        assert near < far

    def test_click_confusions_moderate(self):
        assert token_distance("click", "hbar") == pytest.approx(0.60)
        assert token_distance("click", "arc:left") == pytest.approx(0.75)


class TestPrefixTree:
    def test_exact_match_unique(self):
        g = TreeGrammar()
        assert g.exact_match(shape_sequence("H")) == ["H"]

    def test_exact_match_ambiguous_group(self):
        g = TreeGrammar()
        matches = g.exact_match(shape_sequence("D"))
        assert "D" in matches and "P" not in matches or "P" in matches
        # D and P differ only in position, so at token level they collide.
        assert set(g.exact_match(("vbar", "arc:left"))) >= {"D"}

    def test_prefix_candidates_narrow(self):
        g = TreeGrammar()
        one = g.candidates_for_prefix(("vbar",))
        two = g.candidates_for_prefix(("vbar", "hbar"))
        assert set(two) <= set(one)
        assert "H" in two and "E" in two

    def test_unknown_prefix_empty(self):
        g = TreeGrammar()
        assert g.candidates_for_prefix(("arc:left", "arc:left", "arc:left", "arc:left")) == []


class TestPositionDisambiguation:
    def test_d_vs_p(self):
        g = TreeGrammar()
        bar = _obs("vbar", [(r, 1) for r in range(5)])
        full_bowl = _obs("arc:left", [(0, 2), (1, 3), (2, 3), (3, 3), (4, 2)])
        top_bump = _obs("arc:left", [(0, 2), (1, 3), (2, 2)])
        d_result = g.recognize([bar, full_bowl])
        p_result = g.recognize([bar, top_bump])
        assert d_result.letter == "D"
        assert p_result.letter == "P"

    def test_letter_geometry_normalised(self):
        for letter in ("D", "P", "O", "S"):
            geom = letter_geometry(letter)
            assert all(0.0 <= s.cx <= 1.0 and 0.0 <= s.cy <= 1.0 for s in geom)

    def test_observed_geometry_aspect_preserved(self):
        bar = _obs("vbar", [(r, 1) for r in range(5)])
        geom = observed_geometry([bar])
        assert geom[0].width == pytest.approx(0.0)
        assert geom[0].height == pytest.approx(1.0)


class TestRecognize:
    def test_empty(self):
        result = TreeGrammar().recognize([])
        assert result.letter is None

    def test_h_from_clean_strokes(self):
        g = TreeGrammar()
        left = _obs("vbar", [(r, 1) for r in range(5)], angle=90.0)
        cross = _obs("hbar", [(2, 1), (2, 2), (2, 3)], angle=0.0)
        right = _obs("vbar", [(r, 3) for r in range(5)], angle=90.0)
        result = g.recognize([left, cross, right])
        assert result.letter == "H"
        assert result.candidates[0][0] == "H"

    def test_angle_aware_scoring_recovers_narrow_v(self):
        g = TreeGrammar()
        # Narrow V: both legs read as steep "vbar" but with telling angles.
        left = _obs("vbar", [(0, 1), (1, 1), (2, 1), (3, 2), (4, 2)], angle=-75.0)
        right = _obs("vbar", [(4, 2), (3, 3), (2, 3), (1, 3), (0, 3)], angle=75.0)
        result = g.recognize([left, right])
        assert result.letter == "V"

    def test_reject_above_threshold(self):
        g = TreeGrammar(accept_threshold=0.01)
        junk = _obs("click", [(0, 0)])
        result = g.recognize([junk, junk, junk, junk])
        assert result.letter is None

    def test_score_infinite_for_wrong_count(self):
        g = TreeGrammar()
        bar = _obs("vbar", [(r, 1) for r in range(5)])
        assert math.isinf(g.score_letter("H", [bar]))


def test_stroke_pair_cost_uses_continuous_angle():
    bar = _obs("vbar", [(r, 2) for r in range(5)], angle=72.0)
    v_leg = LETTER_STROKES["V"][1]  # the "/" leg, ~72 degrees
    h_bar = LETTER_STROKES["H"][1]  # the "−" crossbar
    assert stroke_pair_cost(bar, v_leg) < stroke_pair_cost(bar, h_bar)
