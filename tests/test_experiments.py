"""Tests of the experiment framework plus smoke runs of the cheap ones.

The full fast-mode suite is exercised by the benchmarks; here we verify the
registry covers every paper artefact, result formatting works, and the
analytically-cheap experiments meet their expectations.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS, REGISTRY, ExperimentResult, run_experiment

PAPER_ARTEFACTS = {
    "fig02", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
    "fig11", "fig12", "fig13", "fig16", "fig17", "fig18", "fig19",
    "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "tab1",
}

ABLATIONS = {"abl_weighting", "abl_otsu", "abl_window", "abl_direction"}
EXTENSIONS = {
    "ext_speed", "ext_hover", "ext_holistic", "ext_words", "ext_multipad",
    "ext_tracking",
}


def test_registry_covers_every_artefact():
    assert set(ALL_EXPERIMENTS) == PAPER_ARTEFACTS | ABLATIONS | EXTENSIONS


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


@pytest.mark.parametrize("eid", ["fig06", "fig11", "fig12", "fig13"])
def test_cheap_experiments_meet_expectations(eid):
    result = run_experiment(eid)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.expectation_met is True


def test_result_to_text_renders_all_rows():
    result = run_experiment("fig13")
    text = result.to_text()
    assert result.experiment_id in text
    assert "expectation" in text
    assert len(text.splitlines()) >= len(result.rows)


def test_result_column_access():
    result = run_experiment("fig12")
    drops = result.column("target_rss_drop_db")
    assert len(drops) == len(result.rows)


def test_experiments_are_deterministic():
    a = run_experiment("fig12")
    b = run_experiment("fig12")
    assert a.rows == b.rows
