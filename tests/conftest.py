"""Shared fixtures.

The session-scoped runner is expensive (deployment + calibration), so the
suites share one; tests that mutate state build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="session")
def shared_runner() -> SessionRunner:
    return SessionRunner(build_scenario(ScenarioConfig(seed=7)))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
