"""StreamingSession behaviour: bounded retention, lifecycle, and the
StreamSegmenter's batch equivalence on adversarial synthetic streams."""

import numpy as np
import pytest

from repro.core.segmentation import StreamSegmenter, segment_strokes
from repro.motion.script import script_for_letter, script_for_word
from repro.rfid.reports import ReportLog
from repro.sim.live import iter_chunks
from repro.stream import StreamingSession


# ---------------------------------------------------------------------------
# Bounded memory
# ---------------------------------------------------------------------------


def test_bounded_memory_on_long_session(shared_runner):
    # A whole word is the longest session the simulator produces; a
    # bounded session must shed the past as it goes.
    log = shared_runner.run_script(
        script_for_word("HELLO", shared_runner.rng)
    )
    session = StreamingSession(shared_runner.pad)
    max_buffered = 0
    for chunk in iter_chunks(log, 0.1):
        session.ingest(chunk)
        max_buffered = max(max_buffered, session.buffered_reads)
        horizon = session.retention_time
        if horizon is not None and session.buffered_reads:
            # Retention invariant: nothing older than the horizon stays.
            oldest = float(session._buffer.columns()[0][0])
            assert oldest >= horizon - 1e-9
    session.finalize()
    assert len(log) > 2000  # the bound is only meaningful on a long stream
    assert max_buffered < len(log) / 3
    assert session.letter_result is not None


def test_unbounded_session_keeps_everything(shared_runner):
    log = shared_runner.run_script(
        script_for_letter("T", shared_runner.rng)
    )
    session = StreamingSession(shared_runner.pad, bounded=False)
    for chunk in iter_chunks(log, 0.1):
        session.ingest(chunk)
    session.finalize()
    assert session.buffered_reads == len(log)


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def test_out_of_order_chunks_rejected(shared_runner):
    log = shared_runner.run_script(
        script_for_letter("T", shared_runner.rng)
    )
    chunks = list(iter_chunks(log, 1.0))
    session = StreamingSession(shared_runner.pad)
    session.ingest(chunks[1])
    with pytest.raises(ValueError):
        session.ingest(chunks[0])


def test_finalized_session_rejects_further_use(shared_runner):
    log = shared_runner.run_script(
        script_for_letter("T", shared_runner.rng)
    )
    session = StreamingSession(shared_runner.pad)
    session.ingest(log)
    session.finalize()
    with pytest.raises(RuntimeError):
        session.ingest(log)
    with pytest.raises(RuntimeError):
        session.finalize()


def test_motion_result_requires_finalize(shared_runner):
    session = StreamingSession(shared_runner.pad)
    with pytest.raises(RuntimeError):
        session.motion_result()


def test_empty_session_finalizes_cleanly(shared_runner):
    session = StreamingSession(shared_runner.pad)
    events = session.finalize()
    assert len(events) == 1  # just the (empty) letter event
    assert session.letter_result.letter is None
    assert session.motion_result() is None


# ---------------------------------------------------------------------------
# iter_chunks
# ---------------------------------------------------------------------------


def test_iter_chunks_partitions_the_log(shared_runner):
    log = shared_runner.run_script(
        script_for_letter("L", shared_runner.rng)
    )
    chunks = list(iter_chunks(log, 0.23))
    assert sum(len(c) for c in chunks) == len(log)
    ts = np.concatenate([c.columns()[0] for c in chunks if len(c)])
    assert np.array_equal(ts, log.columns()[0])


def test_iter_chunks_rejects_nonpositive_chunk(shared_runner):
    with pytest.raises(ValueError):
        list(iter_chunks(ReportLog(), 0.0))


# ---------------------------------------------------------------------------
# ReportLog streaming support
# ---------------------------------------------------------------------------


def test_report_log_drop_before(shared_runner):
    log = shared_runner.reader.collect_static(1.0)
    ts0 = log.columns()[0].copy()
    cut = float(ts0[ts0.size // 2])
    expected = int(np.searchsorted(ts0, cut, side="left"))
    assert log.drop_before(cut) == expected
    ts1 = log.columns()[0]
    assert ts1.size == ts0.size - expected
    assert float(ts1[0]) >= cut
    # Reads exactly at the cut survive, so a repeat drop is a no-op.
    assert log.drop_before(cut) == 0


# ---------------------------------------------------------------------------
# StreamSegmenter vs segment_strokes on synthetic adversarial streams
# ---------------------------------------------------------------------------


def _synthetic_log(calibration, rng, duration_s=6.0, n=1500):
    """Random read stream with two noisy bursts over a quiet baseline."""
    tag_ids = np.array(sorted(calibration.tags))
    ts = np.sort(rng.uniform(0.0, duration_s, size=n))
    tags = rng.choice(tag_ids, size=n)
    centres = np.array([calibration.central_phase(int(t)) for t in tags])
    noise = rng.normal(0.0, 0.05, size=n)
    burst = ((ts > 1.5) & (ts < 2.5)) | ((ts > 4.0) & (ts < 4.7))
    noise[burst] += rng.normal(0.0, 1.2, size=int(burst.sum()))
    phases = np.mod(centres + noise, 2.0 * np.pi)
    log = ReportLog()
    log.extend_columns(
        ts, tags, phases,
        np.full(n, -60.0), np.zeros(n),
        [f"EPC{int(t):04d}" for t in tags],
    )
    return log


def test_stream_segmenter_matches_batch_on_synthetic_logs(shared_runner, rng):
    calibration = shared_runner.pad.calibration
    config = shared_runner.pad.config.segmentation
    for _ in range(3):
        log = _synthetic_log(calibration, rng)
        expected = segment_strokes(log, calibration, config)
        ts, tags, phases = log.columns()[0], log.columns()[1], log.columns()[2]
        segmenter = StreamSegmenter(calibration, config)
        got = []
        i = 0
        while i < ts.size:
            j = min(ts.size, i + int(rng.integers(1, 200)))
            got.extend(segmenter.ingest(ts[i:j], tags[i:j], phases[i:j]))
            i = j
        got.extend(segmenter.finalize())
        assert got == expected
