"""WorkspaceSession: cross-tile watermark merge and stitching contracts.

The workspace streaming contract (DESIGN.md §15): for *any* per-tile
chunking and any interleaving of tile arrivals, the finalized event
stream equals the batch pipeline run on the merged workspace log — the
same bit-exactness bar the single-pad streaming layer holds (§11).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.script import script_for_letter
from repro.rfid.reports import merge_logs
from repro.sim.live import iter_chunks
from repro.sim.runner import WorkspaceRunner
from repro.sim.scenario import ScenarioConfig
from repro.sim.workspace import WorkspaceConfig, build_workspace
from repro.stream import StreamingSession, WorkspaceSession

from .test_equivalence import assert_letter_equal


@pytest.fixture(scope="module")
def ws_runner():
    return WorkspaceRunner(
        build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7), tiles_x=2))
    )


@pytest.fixture(scope="module")
def letter_capture(ws_runner):
    """One boundary-crossing letter: per-tile logs + merged log + batch."""
    script = script_for_letter("L", ws_runner.rng)
    tile_logs = ws_runner.workspace.collect_tiles(script.duration, script)
    merged = merge_logs(tile_logs)
    batch = ws_runner.pad.recognize_letter(merged)
    batch_windows = ws_runner.pad.segment(merged)
    return tile_logs, merged, batch, batch_windows


def _drain(session, tile_chunks):
    """Feed per-tile chunk lists round-robin, then finalize."""
    iters = [iter(chunks) for chunks in tile_chunks]
    live = set(range(len(iters)))
    while live:
        for tile in sorted(live):
            try:
                session.ingest_tile(tile, next(iters[tile]))
            except StopIteration:
                live.discard(tile)
    session.finalize()
    return session


# ----------------------------------------------------------------------
# 1-tile degeneracy: pure passthrough to StreamingSession.


def test_single_tile_session_equals_streaming_session(shared_runner):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter("T", shared_runner.rng))
    plain = StreamingSession(pad)
    ws = WorkspaceSession(pad, tile_count=1)
    for chunk in iter_chunks(log, 0.1):
        plain.ingest(chunk)
        ws.ingest_tile(0, chunk)
    plain.finalize()
    ws.finalize()
    assert ws.windows == plain.windows
    assert_letter_equal(ws.letter_result, plain.letter_result)
    assert ws.stitched_windows == []


def test_tile_count_validated(shared_runner):
    with pytest.raises(ValueError):
        WorkspaceSession(shared_runner.pad, tile_count=0)


# ----------------------------------------------------------------------
# Multi-tile: any chunking/interleaving equals batch on the merged log.


@pytest.mark.parametrize("chunk_s", [0.07, 0.15, 0.37])
def test_tile_chunking_equals_batch(ws_runner, letter_capture, chunk_s):
    tile_logs, _, batch, batch_windows = letter_capture
    session = _drain(
        WorkspaceSession(ws_runner.pad, tile_count=2),
        [list(iter_chunks(log, chunk_s)) for log in tile_logs],
    )
    assert session.windows == batch_windows
    assert_letter_equal(session.letter_result, batch)


def test_reverse_tile_order_equals_batch(ws_runner, letter_capture):
    tile_logs, _, batch, batch_windows = letter_capture
    session = WorkspaceSession(ws_runner.pad, tile_count=2)
    # All of tile 1 first, then all of tile 0: the watermark must hold
    # everything until the lagging tile speaks, then merge in time order.
    for chunk in iter_chunks(tile_logs[1], 0.25):
        session.ingest_tile(1, chunk)
    for chunk in iter_chunks(tile_logs[0], 0.25):
        session.ingest_tile(0, chunk)
    session.finalize()
    assert session.windows == batch_windows
    assert_letter_equal(session.letter_result, batch)


def test_merged_stream_ingest_routes_by_port(ws_runner, letter_capture):
    _, merged, batch, batch_windows = letter_capture
    session = WorkspaceSession(ws_runner.pad, tile_count=2)
    for chunk in iter_chunks(merged, 0.2):
        session.ingest(chunk)
    session.finalize()
    assert session.windows == batch_windows
    assert_letter_equal(session.letter_result, batch)


def test_nothing_released_until_every_tile_speaks(ws_runner, letter_capture):
    tile_logs, _, _, _ = letter_capture
    session = WorkspaceSession(ws_runner.pad, tile_count=2)
    for chunk in iter_chunks(tile_logs[0], 0.5):
        session.ingest_tile(0, chunk)
    # Tile 1 has never spoken: every read must still be held back, since
    # its first chunk may legitimately carry reads older than tile 0's.
    assert session.buffered_reads == len(tile_logs[0])
    assert session.events == []
    session.ingest_tile(1, tile_logs[1])
    session.finalize()
    assert session.letter_result is not None


def test_explicit_watermark_advances_release(ws_runner, letter_capture):
    tile_logs, _, batch, _ = letter_capture
    session = WorkspaceSession(ws_runner.pad, tile_count=2)
    session.ingest_tile(0, tile_logs[0])
    # An empty heartbeat with t_hi vouches tile 1 is quiet through the
    # whole capture, releasing tile 0's reads without any tile-1 data.
    from repro.rfid.reports import ReportLog

    session.ingest_tile(1, ReportLog(), t_hi=float(tile_logs[0].end_time))
    assert session.buffered_reads < len(tile_logs[0])
    session.ingest_tile(1, tile_logs[1].slice_time(
        float(tile_logs[0].end_time), np.inf))
    session.finalize()
    assert session.letter_result is not None


def test_stitched_windows_cover_strokes(ws_runner, letter_capture):
    tile_logs, _, batch, batch_windows = letter_capture
    session = _drain(
        WorkspaceSession(ws_runner.pad, tile_count=2),
        [list(iter_chunks(log, 0.1)) for log in tile_logs],
    )
    stitched = session.stitched_windows
    assert len(session.tile_windows) == 2
    assert sum(len(w) for w in session.tile_windows) >= len(stitched) >= 1
    # Stitched windows are time-ordered and non-overlapping.
    for prev, cur in zip(stitched, stitched[1:]):
        assert cur.t0 > prev.t1
    # Every batch window falls inside some stitched window's span.
    for w in batch_windows:
        assert any(s.t0 - 0.3 <= w.t0 and w.t1 <= s.t1 + 0.3 for s in stitched)
