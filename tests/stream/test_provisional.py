"""Provisional event layer: previews never disturb the finalized stream.

The contract (DESIGN.md §13): with ``provisional=True`` a streaming
session *additionally* emits ``final=False`` stroke/letter previews while
a window is still forming.  Filtering the event stream down to
``final=True`` must leave exactly — to the float — the events a
non-provisional session emits on the same chunking, and the finalized
letter must equal the batch pipeline's answer.  Previews are advisory:
each one is eventually superseded by a final event, and the last event of
every session is the finalizing LetterEvent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.script import script_for_letter
from repro.sim.live import iter_chunks, stream_log
from repro.stream import LetterEvent, StreamingSession, StrokeEvent

from tests.stream.test_equivalence import (
    assert_letter_equal,
    assert_obs_equal,
    random_chunks,
)


def _run(pad, chunks, provisional: bool):
    session = StreamingSession(pad, provisional=provisional)
    events = []
    for chunk in chunks:
        events.extend(session.ingest(chunk))
    events.extend(session.finalize())
    return session, events


def _assert_final_streams_equal(with_prov, plain):
    finals = [ev for ev in with_prov if ev.final]
    assert len(finals) == len(plain)
    for fa, fb in zip(finals, plain):
        assert type(fa) is type(fb)
        assert fa.emitted_at == fb.emitted_at
        if isinstance(fa, StrokeEvent):
            assert fa.window == fb.window
            assert_obs_equal(fa.stroke, fb.stroke)
        else:
            assert fa.result.letter == fb.result.letter
            assert fa.result.windows == fb.result.windows


@pytest.fixture(scope="module")
def letter_log(shared_runner):
    return shared_runner.run_script(
        script_for_letter("H", shared_runner.rng)
    )


class TestGoldenStream:
    @pytest.mark.parametrize("chunk_s", [0.05, 0.1, 0.23])
    def test_final_events_identical_across_provisional_flag(
        self, shared_runner, letter_log, chunk_s
    ):
        pad = shared_runner.pad
        _, with_prov = _run(pad, iter_chunks(letter_log, chunk_s), True)
        _, plain = _run(pad, iter_chunks(letter_log, chunk_s), False)
        _assert_final_streams_equal(with_prov, plain)

    def test_random_chunkings_previews_always_superseded(
        self, shared_runner, letter_log, rng
    ):
        pad = shared_runner.pad
        batch = pad.recognize_letter(letter_log)
        for _ in range(4):
            chunks = random_chunks(letter_log, rng)
            session, events = _run(pad, chunks, True)
            # The stream always closes on a finalizing letter event.
            assert isinstance(events[-1], LetterEvent)
            assert events[-1].final
            # Every preview is strictly before the last final LetterEvent.
            last_final = max(
                i for i, ev in enumerate(events)
                if isinstance(ev, LetterEvent) and ev.final
            )
            for i, ev in enumerate(events):
                if not ev.final:
                    assert i < last_final
            assert_letter_equal(session.letter_result, batch)

    def test_previews_fire_and_are_marked(self, shared_runner, letter_log):
        pad = shared_runner.pad
        _, events = _run(pad, iter_chunks(letter_log, 0.05), True)
        previews = [ev for ev in events if not ev.final]
        # A multi-stroke letter mid-write must produce previews.
        assert previews
        assert any(isinstance(ev, LetterEvent) for ev in previews)
        assert any(isinstance(ev, StrokeEvent) for ev in previews)
        for ev in previews:
            if isinstance(ev, LetterEvent):
                assert ev.result is not None

    def test_batch_surfaces_unchanged(self, shared_runner, letter_log):
        pad = shared_runner.pad
        session, _ = _run(pad, iter_chunks(letter_log, 0.1), True)
        assert session.windows == pad.segment(letter_log)
        assert_letter_equal(session.letter_result, pad.recognize_letter(letter_log))

    def test_stream_log_provisional_flag(self, shared_runner, letter_log):
        pad = shared_runner.pad
        events = list(stream_log(pad, letter_log, 0.05, provisional=True))
        assert any(not ev.final for ev in events)
        assert isinstance(events[-1], LetterEvent) and events[-1].final
