"""Streaming/batch equivalence property tests.

The streaming contract (DESIGN.md §11): for *any* chunking of a report
stream — including one read at a time, and chunk boundaries that split a
100 ms frame — the streamed window/stroke/letter sequence is exactly, to
the float, what the batch pipeline computes on the whole log.
"""

import dataclasses

import numpy as np
import pytest

from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.rfid.reports import ReportLog
from repro.sim.live import iter_chunks, stream_log
from repro.stream import LetterEvent, StreamingSession

# ---------------------------------------------------------------------------
# Comparison helpers: StrokeObservation carries numpy-bearing GreyMap /
# BinaryMap fields, so dataclass ``==`` would be ambiguous — compare
# field-wise with np.array_equal where needed.
# ---------------------------------------------------------------------------


def _assert_map_equal(a, b):
    if a is None or b is None:
        assert a is b
        return
    for f in dataclasses.fields(type(a)):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


def assert_obs_equal(a, b):
    if a is None or b is None:
        assert a is b
        return
    assert type(a) is type(b)
    for f in dataclasses.fields(type(a)):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if f.name in ("grey", "binary"):
            _assert_map_equal(va, vb)
        else:
            assert va == vb, f.name


def assert_letter_equal(streamed, batch):
    assert streamed.letter == batch.letter
    assert streamed.candidates == batch.candidates
    assert streamed.windows == batch.windows
    assert len(streamed.strokes) == len(batch.strokes)
    for sa, sb in zip(streamed.strokes, batch.strokes):
        assert_obs_equal(sa, sb)


# ---------------------------------------------------------------------------
# Chunk builders
# ---------------------------------------------------------------------------


def single_read_chunks(log):
    ts, tag, phase, rss, dopp, port, epc = log.columns()
    for i in range(ts.size):
        chunk = ReportLog()
        chunk.extend_columns(
            ts[i:i + 1], tag[i:i + 1], phase[i:i + 1], rss[i:i + 1],
            dopp[i:i + 1], list(epc[i:i + 1]), antenna_port=int(port[i]),
        )
        yield chunk


def random_chunks(log, rng, n_cuts=23):
    cuts = np.sort(rng.uniform(log.start_time, log.end_time, size=n_cuts))
    edges = [log.start_time, *cuts, log.end_time + 1e-6]
    return [log.slice_time(a, b) for a, b in zip(edges[:-1], edges[1:])]


def whole_log_chunk(log):
    return [log]


def _stream(pad, chunks, bounded=True):
    session = StreamingSession(pad, bounded=bounded)
    for chunk in chunks:
        session.ingest(chunk)
    session.finalize()
    return session


# chunk_s=0.033 and 0.23 both split the 100 ms RMS frame; 0.05 aligns
# with it; 5.0 covers multi-frame chunks.
CHUNK_SECONDS = (0.033, 0.05, 0.23, 5.0)


# ---------------------------------------------------------------------------
# Letter sessions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("letter", ["H", "T", "L"])
def test_letter_stream_equals_batch_for_time_chunkings(shared_runner, letter):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter(letter, shared_runner.rng))
    batch = pad.recognize_letter(log)
    batch_windows = pad.segment(log)
    for chunk_s in CHUNK_SECONDS:
        session = _stream(pad, iter_chunks(log, chunk_s))
        assert session.windows == batch_windows
        assert_letter_equal(session.letter_result, batch)


def test_letter_stream_equals_batch_whole_log(shared_runner):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter("E", shared_runner.rng))
    session = _stream(pad, whole_log_chunk(log))
    assert_letter_equal(session.letter_result, pad.recognize_letter(log))


def test_letter_stream_equals_batch_random_chunking(shared_runner, rng):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter("H", shared_runner.rng))
    batch = pad.recognize_letter(log)
    for _ in range(5):
        session = _stream(pad, random_chunks(log, rng))
        assert_letter_equal(session.letter_result, batch)


def test_letter_stream_equals_batch_one_read_chunks(shared_runner):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter("T", shared_runner.rng))
    session = _stream(pad, single_read_chunks(log))
    assert_letter_equal(session.letter_result, pad.recognize_letter(log))


def test_stream_log_yields_events_in_order_and_letter_last(shared_runner):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_letter("H", shared_runner.rng))
    events = list(stream_log(pad, log, 0.1))
    assert isinstance(events[-1], LetterEvent)
    stroke_events = events[:-1]
    windows = [ev.window for ev in stroke_events]
    assert windows == pad.segment(log)
    for ev in stroke_events:
        # No clairvoyance: an event can only fire once its window closed.
        assert ev.emitted_at >= ev.window.t1


# ---------------------------------------------------------------------------
# Motion sessions
# ---------------------------------------------------------------------------

MOTIONS = [
    Motion(StrokeKind.VBAR),
    Motion(StrokeKind.HBAR),
    Motion(StrokeKind.SLASH),
    Motion(StrokeKind.CLICK),
]


@pytest.mark.parametrize("motion", MOTIONS, ids=lambda m: m.kind.name)
def test_motion_stream_equals_batch(shared_runner, motion):
    pad = shared_runner.pad
    log = shared_runner.run_script(script_for_motion(motion, shared_runner.rng))
    batch = pad.detect_motion(log)
    for chunk_s in (0.05, 0.23):
        # bounded=False keeps the quiet-log fallback exact too (it needs
        # the whole log); the windowed path is exact either way.
        session = _stream(pad, iter_chunks(log, chunk_s), bounded=False)
        assert_obs_equal(session.motion_result(), batch)


def test_motion_bounded_session_exact_when_windows_exist(shared_runner):
    pad = shared_runner.pad
    log = shared_runner.run_script(
        script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
    )
    batch = pad.detect_motion(log)
    session = _stream(pad, iter_chunks(log, 0.1), bounded=True)
    assert session.windows  # a real stroke must segment
    assert_obs_equal(session.motion_result(), batch)
