import math

import pytest

from repro.physics.geometry import (
    GridLayout,
    Vec3,
    angle_between,
    centroid,
    mirror_across_plane,
    path_length,
    resample_polyline,
    rotate_about_y,
)


class TestVec3:
    def test_arithmetic(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)
        assert a * 2 == Vec3(2, 4, 6)
        assert 2 * a == Vec3(2, 4, 6)
        assert -a == Vec3(-1, -2, -3)

    def test_dot_cross_norm(self):
        x, y = Vec3(1, 0, 0), Vec3(0, 1, 0)
        assert x.dot(y) == 0.0
        assert x.cross(y) == Vec3(0, 0, 1)
        assert Vec3(3, 4, 0).norm() == 5.0

    def test_normalized(self):
        v = Vec3(0, 0, 2).normalized()
        assert v == Vec3(0, 0, 1)
        with pytest.raises(ValueError):
            Vec3(0, 0, 0).normalized()

    def test_lerp_endpoints_and_middle(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec3(1, 2, 3)

    def test_distance(self):
        assert Vec3(1, 1, 1).distance_to(Vec3(1, 1, 2)) == 1.0


class TestAngles:
    def test_angle_between_orthogonal(self):
        assert angle_between(Vec3(1, 0, 0), Vec3(0, 1, 0)) == pytest.approx(math.pi / 2)

    def test_angle_between_parallel_and_antiparallel(self):
        assert angle_between(Vec3(1, 0, 0), Vec3(2, 0, 0)) == pytest.approx(0.0)
        assert angle_between(Vec3(1, 0, 0), Vec3(-1, 0, 0)) == pytest.approx(math.pi)

    def test_angle_between_rejects_zero(self):
        with pytest.raises(ValueError):
            angle_between(Vec3(0, 0, 0), Vec3(1, 0, 0))

    def test_rotate_about_y(self):
        rotated = rotate_about_y(Vec3(0, 0, 1), math.pi / 2)
        assert rotated.x == pytest.approx(1.0)
        assert rotated.z == pytest.approx(0.0, abs=1e-12)


def test_mirror_across_plane():
    image = mirror_across_plane(Vec3(0, 0, -1), Vec3(0, 0, 2), Vec3(0, 0, 1))
    assert image == Vec3(0, 0, 5)


class TestGridLayout:
    def test_default_prototype_grid(self):
        g = GridLayout()
        assert g.count == 25
        assert g.width == pytest.approx(0.24)

    def test_positions_centred(self):
        g = GridLayout(rows=5, cols=5, pitch=0.06)
        c = centroid(g.positions())
        assert c.x == pytest.approx(0.0, abs=1e-12)
        assert c.y == pytest.approx(0.0, abs=1e-12)

    def test_row0_is_top(self):
        g = GridLayout()
        assert g.position(0, 0).y > g.position(4, 0).y

    def test_index_roundtrip(self):
        g = GridLayout(rows=3, cols=4, pitch=0.05)
        for r in range(3):
            for c in range(4):
                assert g.row_col(g.index_of(r, c)) == (r, c)

    def test_out_of_range(self):
        g = GridLayout()
        with pytest.raises(IndexError):
            g.position(5, 0)
        with pytest.raises(IndexError):
            g.row_col(25)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GridLayout(rows=0)
        with pytest.raises(ValueError):
            GridLayout(pitch=0.0)

    def test_nearest_cell(self):
        g = GridLayout()
        assert g.nearest_cell(Vec3(0.0, 0.0, 0.1)) == (2, 2)
        assert g.nearest_cell(Vec3(-0.2, 0.2, 0.0)) == (0, 0)


class TestPolyline:
    def test_path_length(self):
        pts = [Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(1, 1, 0)]
        assert path_length(pts) == pytest.approx(2.0)

    def test_resample_uniform_spacing(self):
        pts = [Vec3(0, 0, 0), Vec3(10, 0, 0)]
        out = resample_polyline(pts, 11)
        assert len(out) == 11
        steps = [out[i].distance_to(out[i + 1]) for i in range(10)]
        assert all(s == pytest.approx(1.0) for s in steps)

    def test_resample_keeps_endpoints(self):
        pts = [Vec3(0, 0, 0), Vec3(1, 2, 3), Vec3(5, 5, 5)]
        out = resample_polyline(pts, 7)
        assert out[0] == pts[0]
        assert out[-1].distance_to(pts[-1]) < 1e-9

    def test_resample_degenerate(self):
        out = resample_polyline([Vec3(1, 1, 1)], 4)
        assert out == [Vec3(1, 1, 1)] * 4

    def test_resample_validates(self):
        with pytest.raises(ValueError):
            resample_polyline([], 5)
        with pytest.raises(ValueError):
            resample_polyline([Vec3(0, 0, 0)], 1)


def test_centroid_empty_raises():
    with pytest.raises(ValueError):
        centroid([])
