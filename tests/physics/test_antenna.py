import math

import pytest

from repro.physics.antenna import (
    ReaderAntenna,
    minimum_plane_distance,
    plane_side_for_grid,
)
from repro.physics.geometry import Vec3
from repro.units import linear_to_db


@pytest.fixture()
def panel() -> ReaderAntenna:
    return ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)


def test_beam_angle_physical_8dbi(panel):
    # 8 dBi -> linear 6.31 -> sqrt(4pi/6.31) ~= 81 degrees.
    assert panel.beam_angle_degrees() == pytest.approx(80.9, abs=0.5)


def test_beam_angle_paper_arithmetic():
    # The paper plugs G=8 (linear) into Eq. 14 and quotes ~72 degrees.
    ant = ReaderAntenna(Vec3(0, 0, 0), Vec3(0, 0, 1), gain_dbi=linear_to_db(8.0))
    assert ant.beam_angle_degrees() == pytest.approx(71.8, abs=0.5)


def test_boresight_gain_is_peak(panel):
    boresight_gain = panel.gain_towards(Vec3(0, 0, 1))
    off_axis_gain = panel.gain_towards(Vec3(0.3, 0, 0))
    assert boresight_gain == pytest.approx(panel.gain_linear)
    assert off_axis_gain < boresight_gain


def test_pattern_monotone_with_angle(panel):
    gains = [
        panel.gain_towards(Vec3(math.sin(a), 0.0, -0.32 + math.cos(a)))
        for a in (0.0, 0.3, 0.6, 0.9, 1.2)
    ]
    assert all(g1 >= g2 for g1, g2 in zip(gains, gains[1:]))


def test_back_hemisphere_attenuated(panel):
    behind = panel.gain_towards(Vec3(0, 0, -1.0))
    assert linear_to_db(panel.gain_linear / behind) >= panel.front_to_back_db - 1e-6


def test_half_power_at_half_beam_angle(panel):
    half = panel.beam_angle() / 2.0
    target = Vec3(math.sin(half), 0.0, -0.32 + math.cos(half))
    ratio = panel.gain_towards(target) / panel.gain_linear
    assert ratio == pytest.approx(0.5, rel=0.05)


def test_gain_towards_self_rejected(panel):
    with pytest.raises(ValueError):
        panel.gain_towards(panel.position)


def test_zero_boresight_rejected():
    with pytest.raises(ValueError):
        ReaderAntenna(Vec3(0, 0, 0), Vec3(0, 0, 0))


def test_plane_side_for_prototype():
    # 5 tags of 4.4 cm + 4 gaps of 6 cm = 46 cm (paper section IV-B.3).
    assert plane_side_for_grid(0.044, 0.06, 5) == pytest.approx(0.46)


def test_minimum_plane_distance_paper_value():
    d = minimum_plane_distance(0.46, linear_to_db(8.0))
    assert d == pytest.approx(0.317, abs=0.005)


def test_minimum_plane_distance_wide_beam_is_zero():
    # A near-isotropic antenna covers any parallel plane from any distance.
    assert minimum_plane_distance(0.46, gain_dbi=0.1) == 0.0


def test_minimum_plane_distance_validates():
    with pytest.raises(ValueError):
        minimum_plane_distance(0.0)
