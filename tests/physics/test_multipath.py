import numpy as np
import pytest

from repro.physics.geometry import Vec3
from repro.physics.multipath import (
    ALL_LOCATIONS,
    Environment,
    PlanarReflector,
    free_space,
    location_preset,
)


def test_reflector_image_position():
    wall = PlanarReflector(Vec3(0, 0, 3.0), Vec3(0, 0, -1.0))
    image = wall.image_of(Vec3(0, 0, -0.32))
    assert image.z == pytest.approx(6.32)


def test_reflector_validation():
    with pytest.raises(ValueError):
        PlanarReflector(Vec3(0, 0, 0), Vec3(0, 0, 0))
    with pytest.raises(ValueError):
        PlanarReflector(Vec3(0, 0, 0), Vec3(0, 0, 1), coefficient=1.5 + 0j)
    with pytest.raises(ValueError):
        PlanarReflector(Vec3(0, 0, 0), Vec3(0, 0, 1), flutter=-0.1)


def test_presets_ordered_by_richness():
    richness = [location_preset(i).richness for i in ALL_LOCATIONS]
    assert richness == sorted(richness)
    assert richness[0] > 0.0


def test_location_4_has_most_reflectors():
    assert len(location_preset(4).reflectors) > len(location_preset(1).reflectors)


def test_invalid_preset():
    with pytest.raises(ValueError):
        location_preset(5)


def test_free_space_has_no_images():
    env = free_space()
    assert env.image_antennas(Vec3(0, 0, -0.32)) == []
    assert env.richness == 0.0


def test_image_antennas_stable_without_rng():
    env = location_preset(2)
    a = env.image_antennas(Vec3(0, 0, -0.32))
    b = env.image_antennas(Vec3(0, 0, -0.32))
    assert a == b


def test_flutter_perturbs_coefficients():
    env = location_preset(4)
    rng = np.random.default_rng(1)
    base = env.image_antennas(Vec3(0, 0, -0.32))
    fluttered = env.image_antennas(Vec3(0, 0, -0.32), rng)
    assert any(abs(g1 - g2) > 1e-6 for (_, g1), (_, g2) in zip(base, fluttered))
    # Positions are unchanged by flutter.
    assert all(p1 == p2 for (p1, _), (p2, _) in zip(base, fluttered))
