import cmath
import math

import numpy as np
import pytest

from repro.physics.noise import ReceiverNoise, doppler_estimate_hz
from repro.units import dbm_to_watts


@pytest.fixture()
def noise() -> ReceiverNoise:
    return ReceiverNoise()


def test_strong_signal_low_phase_jitter(noise, rng):
    baseband = math.sqrt(dbm_to_watts(-20.0)) * cmath.exp(1j * 1.0)
    phases = [noise.observe(baseband, rng)[1] for _ in range(300)]
    assert np.std(phases) < 0.03


def test_weak_signal_higher_phase_jitter(noise, rng):
    strong = math.sqrt(dbm_to_watts(-20.0)) * cmath.exp(1j * 1.0)
    weak = math.sqrt(dbm_to_watts(-60.0)) * cmath.exp(1j * 1.0)
    strong_std = np.std([noise.observe(strong, rng)[1] for _ in range(300)])
    weak_std = np.std([noise.observe(weak, rng)[1] for _ in range(300)])
    assert weak_std > 2.0 * strong_std


def test_rss_matches_input_level(noise, rng):
    baseband = math.sqrt(dbm_to_watts(-30.0))
    rss = [noise.observe(baseband, rng)[0] for _ in range(200)]
    assert np.mean(rss) == pytest.approx(-30.0, abs=1.0)


def test_reported_phase_in_range(noise, rng):
    baseband = math.sqrt(dbm_to_watts(-40.0)) * cmath.exp(1j * 5.9)
    for _ in range(50):
        _, phase = noise.observe(baseband, rng)
        assert 0.0 <= phase < 2.0 * math.pi


def test_phase_quantisation(rng):
    noise = ReceiverNoise(residual_phase_jitter_rad=0.0)
    baseband = math.sqrt(dbm_to_watts(-20.0)) * cmath.exp(1j * 1.0)
    _, phase = noise.observe(baseband, rng)
    steps = phase / noise.phase_quantum_rad
    assert steps == pytest.approx(round(steps), abs=1e-6)


def test_phase_std_estimate_monotone(noise):
    strong = noise.phase_std_estimate(dbm_to_watts(-20.0))
    weak = noise.phase_std_estimate(dbm_to_watts(-90.0))
    none = noise.phase_std_estimate(0.0)
    assert strong < weak < none
    assert none == pytest.approx(math.pi / math.sqrt(3.0))


def test_doppler_finite_difference():
    # pi/2 phase advance over 0.25 s -> 1 Hz... (dphi/(2*pi*dt)).
    d = doppler_estimate_hz(1.5 + math.pi / 2, 1.5, 0.25, 0.325)
    assert d == pytest.approx(1.0)


def test_doppler_folds_to_principal_branch():
    d = doppler_estimate_hz(6.2, 0.1, 1.0, 0.325)
    assert abs(d) <= 0.5  # |dphi| folded to <= pi


def test_doppler_rejects_bad_dt():
    with pytest.raises(ValueError):
        doppler_estimate_hz(1.0, 0.5, 0.0, 0.325)
