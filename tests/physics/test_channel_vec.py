"""Cross-check suite: vectorized ChannelEngine vs the scalar ChannelModel.

The engine's contract (see DESIGN.md) has two tiers:

* the batch path (``one_way_batch`` / ``roundtrip_batch``) matches the
  scalar reference to <= 1e-9 *relative* error on arbitrary geometries;
* the single-tag slot path (``one_way_single`` / ``roundtrip_single``)
  is **bit-identical** to ``ChannelModel`` — it routes through the same
  amplitude helpers in the same summation order.

Geometries here are randomized (antenna pose, tag grid, reflector images,
hand/arm scatterers) so the checks are property tests, not goldens.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.physics.antenna import ReaderAntenna
from repro.physics.channel import ChannelModel, Scatterer
from repro.physics.channel_vec import ChannelEngine
from repro.physics.geometry import Vec3
from repro.physics.hand import HandPose, occlusion_loss_db, occlusion_loss_db_batch

WAVELENGTH = 0.327  # ~915 MHz


def random_case(rng: np.random.Generator):
    """One random deployment: antenna, tags, reflector images, scatterers."""
    antenna = ReaderAntenna(
        position=Vec3(*rng.uniform(-0.5, 0.5, 3) + np.array([0.0, 0.0, -0.4])),
        boresight=Vec3(*rng.uniform(-0.3, 0.3, 3) + np.array([0.0, 0.0, 1.0])),
        gain_dbi=float(rng.uniform(4.0, 9.0)),
    )
    n_tags = int(rng.integers(1, 26))
    tag_positions = [
        Vec3(float(x), float(y), float(z))
        for x, y, z in rng.uniform(-0.2, 0.2, (n_tags, 3))
    ]
    tag_gains = [float(g) for g in rng.uniform(0.5, 2.0, n_tags)]
    n_img = int(rng.integers(0, 4))
    images = [
        (
            Vec3(*rng.uniform(-3.0, 3.0, 3)),
            complex(rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)),
        )
        for _ in range(n_img)
    ]
    n_sc = int(rng.integers(0, 5))
    scatterers = [
        Scatterer(
            position=Vec3(*rng.uniform(-0.3, 0.3, 3) + np.array([0.0, 0.0, 0.05])),
            rcs_m2=float(rng.uniform(0.001, 0.01)),
            shadow_depth_db=float(rng.choice([0.0, 12.0])),
        )
        for _ in range(n_sc)
    ]
    loss_db = float(rng.choice([0.0, 3.5]))
    return antenna, tag_positions, tag_gains, images, scatterers, loss_db


def build_pair(antenna, tag_positions, tag_gains, images, occlusion_db=0.0):
    model = ChannelModel(antenna, WAVELENGTH, images, occlusion_db)
    engine = ChannelEngine(
        antenna, WAVELENGTH, tag_positions, tag_gains, images, occlusion_db
    )
    return model, engine


def rel_err(a: complex, b: complex) -> float:
    scale = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / scale


class TestBatchCrossCheck:
    def test_one_way_batch_matches_scalar_model(self):
        rng = np.random.default_rng(2024)
        for _ in range(30):
            antenna, tags, gains, images, scs, loss = random_case(rng)
            model, engine = build_pair(antenna, tags, gains, images)
            g_batch = engine.one_way_batch(scs, direct_extra_loss_db=loss)
            for i, (pos, gt) in enumerate(zip(tags, gains)):
                g_ref = model.one_way(pos, gt, scs, loss)
                assert rel_err(g_batch[i], g_ref) <= 1e-9

    def test_roundtrip_batch_matches_scalar_model(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            antenna, tags, gains, images, scs, loss = random_case(rng)
            model, engine = build_pair(antenna, tags, gains, images)
            s_batch = engine.roundtrip_batch(
                1.0, 0.25, scs, direct_extra_loss_db=loss
            )
            for i, (pos, gt) in enumerate(zip(tags, gains)):
                s_ref = model.roundtrip(1.0, pos, gt, 0.25, scs, loss)
                assert rel_err(s_batch[i], s_ref) <= 1e-9

    def test_incident_power_batch_matches_scalar_model(self):
        rng = np.random.default_rng(99)
        antenna, tags, gains, images, scs, loss = random_case(rng)
        model, engine = build_pair(antenna, tags, gains, images)
        p_batch = engine.incident_power_batch(2.0, scs, loss)
        for i, (pos, gt) in enumerate(zip(tags, gains)):
            p_ref = model.incident_power(2.0, pos, gt, scs, loss)
            assert p_batch[i] == pytest.approx(p_ref, rel=1e-9)

    def test_gamma_override_matches_reconstructed_model(self):
        # Flutter-perturbed coefficients: the engine takes them as a call
        # argument; the scalar model bakes them into reflector_images.
        rng = np.random.default_rng(5)
        for _ in range(10):
            antenna, tags, gains, images, scs, loss = random_case(rng)
            if not images:
                continue
            _, engine = build_pair(antenna, tags, gains, images)
            gammas = [
                complex(rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4))
                for _ in images
            ]
            perturbed = [(pos, g) for (pos, _), g in zip(images, gammas)]
            model = ChannelModel(antenna, WAVELENGTH, perturbed)
            g_batch = engine.one_way_batch(scs, loss, gammas=gammas)
            for i, (pos, gt) in enumerate(zip(tags, gains)):
                assert rel_err(g_batch[i], model.one_way(pos, gt, scs, loss)) <= 1e-9

    def test_static_base_cache_is_coherent(self):
        # one_way_batch(base=static_base(L)) must equal the uncached
        # evaluation with the same static loss — bitwise, it is the same
        # arithmetic on the same cached arrays.
        rng = np.random.default_rng(13)
        antenna, tags, gains, images, scs, loss = random_case(rng)
        _, engine = build_pair(antenna, tags, gains, images)
        base = engine.static_base(loss)
        via_base = engine.one_way_batch(scs, base=base)
        direct = engine.one_way_batch(scs, direct_extra_loss_db=loss)
        assert np.array_equal(via_base, direct)


class TestSinglePathBitIdentity:
    def test_one_way_single_exactly_equals_scalar_model(self):
        rng = np.random.default_rng(31337)
        for _ in range(30):
            antenna, tags, gains, images, scs, loss = random_case(rng)
            model, engine = build_pair(antenna, tags, gains, images)
            for i, (pos, gt) in enumerate(zip(tags, gains)):
                assert engine.one_way_single(i, scs, loss) == model.one_way(
                    pos, gt, scs, loss
                )

    def test_roundtrip_single_exactly_equals_scalar_model(self):
        rng = np.random.default_rng(404)
        for _ in range(10):
            antenna, tags, gains, images, scs, loss = random_case(rng)
            model, engine = build_pair(antenna, tags, gains, images)
            for i, (pos, gt) in enumerate(zip(tags, gains)):
                assert engine.roundtrip_single(
                    i, 1.0, 0.25, scs, loss
                ) == model.roundtrip(1.0, pos, gt, 0.25, scs, loss)

    def test_static_occlusion_constructor_knob(self):
        rng = np.random.default_rng(8)
        antenna, tags, gains, images, scs, _ = random_case(rng)
        model, engine = build_pair(antenna, tags, gains, images, occlusion_db=4.0)
        for i, (pos, gt) in enumerate(zip(tags, gains)):
            assert engine.one_way_single(i, scs) == model.one_way(pos, gt, scs)


class TestOcclusionBatch:
    def test_occlusion_batch_matches_scalar(self):
        rng = np.random.default_rng(21)
        antenna_pos = Vec3(0.0, 0.0, 0.9)
        tags = rng.uniform(-0.2, 0.2, (25, 3))
        for _ in range(10):
            pose = HandPose(position=Vec3(*rng.uniform(-0.2, 0.2, 3)))
            batch = occlusion_loss_db_batch(antenna_pos, tags, pose)
            for i in range(tags.shape[0]):
                scalar = occlusion_loss_db(antenna_pos, Vec3(*tags[i]), pose)
                assert batch[i] == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    def test_occlusion_none_pose_is_zero(self):
        tags = np.zeros((4, 3))
        assert np.array_equal(
            occlusion_loss_db_batch(Vec3(0, 0, 1), tags, None), np.zeros(4)
        )


class TestEngineCounters:
    def test_drain_counters_counts_and_resets(self):
        rng = np.random.default_rng(3)
        antenna, tags, gains, images, scs, loss = random_case(rng)
        _, engine = build_pair(antenna, tags, gains, images)
        engine.drain_counters()
        engine.one_way_batch(scs, loss)
        engine.one_way_single(0, scs, loss)
        counters = engine.drain_counters()
        assert counters["batch_calls"] == 1
        assert counters["single_calls"] == 1
        assert counters["tags_evaluated"] == len(tags)
        assert engine.drain_counters() == {
            "batch_calls": 0,
            "single_calls": 0,
            "tags_evaluated": 0,
        }


class TestScenePowersTrials:
    """Trial-axis readability: every lane row bitwise equals its solo call."""

    def _template(self, rng):
        offsets = np.zeros((4, 3))
        offsets[1:] = rng.uniform(-0.12, 0.12, (3, 3))
        rcs = rng.uniform(0.001, 0.02, 4)
        shadow = (12.0, 0.08, 0.12)
        return offsets, rcs, shadow

    def test_rows_bitwise_equal_solo(self):
        rng = np.random.default_rng(404)
        for _ in range(4):
            antenna, tag_positions, tag_gains, images, _, loss_db = random_case(rng)
            _, engine = build_pair(antenna, tag_positions, tag_gains, images)
            base = engine.static_base(loss_db)
            offsets, rcs, shadow = self._template(rng)
            hand_xyz = rng.uniform(-0.25, 0.25, (6, 3))
            batched = engine.scene_powers_trials(
                base, 1.0, 0.92, hand_xyz, offsets, rcs, shadow
            )
            assert batched.shape == (6, len(tag_positions))
            for t in range(6):
                solo = engine.scene_powers(
                    base, 1.0, 0.92,
                    hand_xyz=tuple(hand_xyz[t].tolist()),
                    offsets=offsets, rcs=rcs, shadow=shadow,
                )
                assert np.array_equal(batched[t], solo)

    def test_degenerate_hop_rows_match_solo(self):
        # A lane whose hand sits exactly on the antenna exercises the
        # masked (invalid-hop) path for that lane only; all rows must
        # still equal their solo evaluations.
        rng = np.random.default_rng(405)
        antenna, tag_positions, tag_gains, images, _, _ = random_case(rng)
        _, engine = build_pair(antenna, tag_positions, tag_gains, images)
        base = engine.static_base(0.0)
        offsets, rcs, shadow = self._template(rng)
        hand_xyz = rng.uniform(-0.2, 0.2, (3, 3))
        hand_xyz[1] = (antenna.position.x, antenna.position.y, antenna.position.z)
        batched = engine.scene_powers_trials(
            base, 1.0, 0.9, hand_xyz, offsets, rcs, shadow
        )
        for t in range(3):
            solo = engine.scene_powers(
                base, 1.0, 0.9, hand_xyz=tuple(hand_xyz[t].tolist()),
                offsets=offsets, rcs=rcs, shadow=shadow,
            )
            assert np.array_equal(batched[t], solo)

    def test_counters_advance_lane_equivalently(self):
        rng = np.random.default_rng(406)
        antenna, tag_positions, tag_gains, images, _, _ = random_case(rng)
        _, engine = build_pair(antenna, tag_positions, tag_gains, images)
        base = engine.static_base(0.0)
        offsets, rcs, shadow = self._template(rng)
        engine.drain_counters()
        engine.scene_powers_trials(
            base, 1.0, 0.9, rng.uniform(-0.2, 0.2, (5, 3)), offsets, rcs, shadow
        )
        counters = engine.drain_counters()
        assert counters["batch_calls"] == 5
        assert counters["tags_evaluated"] == 5 * len(tag_positions)
