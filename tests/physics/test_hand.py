import math

import pytest

from repro.physics.geometry import Vec3
from repro.physics.hand import (
    HandPose,
    hand_height_profile,
    occlusion_loss_db,
    point_to_segment_distance,
)


def test_scatterers_include_hand_and_arm():
    pose = HandPose(Vec3(0, 0, 0.03))
    scs = pose.scatterers()
    assert len(scs) == 4  # hand + 3 arm points
    assert scs[0].detune_rad > 0.0
    assert all(s.detune_rad == 0.0 for s in scs[1:])  # only the hand detunes
    assert all(s.shadow_depth_db == 0.0 for s in scs[1:])


def test_scatterers_without_arm():
    pose = HandPose(Vec3(0, 0, 0.03))
    assert len(pose.scatterers(include_arm=False)) == 1


def test_arm_points_rise_away_from_pad():
    pose = HandPose(Vec3(0, 0, 0.03))
    pts = pose.arm_points()
    assert all(p.z > pose.position.z for p in pts)
    assert pts[-1].z > pts[0].z


def test_arm_rcs_split_across_points():
    pose = HandPose(Vec3(0, 0, 0.03))
    arm = pose.scatterers()[1:]
    assert sum(s.rcs_m2 for s in arm) == pytest.approx(pose.arm_rcs_m2)


def test_point_to_segment_distance():
    a, b = Vec3(0, 0, 0), Vec3(2, 0, 0)
    assert point_to_segment_distance(Vec3(1, 1, 0), a, b) == pytest.approx(1.0)
    assert point_to_segment_distance(Vec3(-1, 0, 0), a, b) == pytest.approx(1.0)
    assert point_to_segment_distance(Vec3(3, 0, 0), a, b) == pytest.approx(1.0)
    # Degenerate segment.
    assert point_to_segment_distance(Vec3(1, 0, 0), a, a) == pytest.approx(1.0)


def test_occlusion_none_without_pose():
    assert occlusion_loss_db(Vec3(0, 0, 1), Vec3(0, 0, 0), None) == 0.0


def test_occlusion_strong_when_hand_on_los():
    antenna = Vec3(0, 0.3, 1.1)
    tag = Vec3(0, 0, 0)
    on_line = HandPose(antenna.lerp(tag, 0.8))
    off_line = HandPose(Vec3(0.5, -0.3, 0.05))
    assert occlusion_loss_db(antenna, tag, on_line) > 5.0
    assert occlusion_loss_db(antenna, tag, off_line) < 1.0


def test_height_profile_grows_with_speed():
    assert hand_height_profile(0.6) > hand_height_profile(0.2)
    assert hand_height_profile(0.1) == pytest.approx(0.03)
