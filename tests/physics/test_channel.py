import cmath
import math

import pytest

from repro.physics.antenna import ReaderAntenna
from repro.physics.channel import ChannelModel, Scatterer
from repro.physics.geometry import Vec3
from repro.units import TWO_PI, db_to_linear, wavelength

LAMBDA = wavelength()


@pytest.fixture()
def model() -> ChannelModel:
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    return ChannelModel(antenna, LAMBDA)


def test_direct_path_phase_matches_distance(model):
    tag = Vec3(0, 0, 0)
    g = model.one_way(tag, tag_gain_linear=1.58)
    expected_phase = -TWO_PI * 0.32 / LAMBDA
    assert cmath.phase(g) == pytest.approx(
        math.remainder(expected_phase, TWO_PI), abs=1e-9
    )


def test_roundtrip_phase_doubles_one_way(model):
    tag = Vec3(0.05, 0.02, 0)
    g = model.one_way(tag, 1.58)
    s = model.roundtrip(1.0, tag, 1.58)
    assert cmath.phase(s) == pytest.approx(
        math.remainder(2 * cmath.phase(g), TWO_PI), abs=1e-9
    )


def test_incident_power_follows_inverse_square(model):
    near = model.incident_power(1.0, Vec3(0, 0, 0), 1.58)
    antenna_far = ReaderAntenna(Vec3(0, 0, -0.64), Vec3(0, 0, 1), gain_dbi=8.0)
    far_model = ChannelModel(antenna_far, LAMBDA)
    far = far_model.incident_power(1.0, Vec3(0, 0, 0), 1.58)
    assert near / far == pytest.approx(4.0, rel=0.01)


def test_backscatter_power_follows_inverse_fourth(model):
    tag = Vec3(0, 0, 0)
    p_near = abs(model.roundtrip(1.0, tag, 1.58)) ** 2
    antenna_far = ReaderAntenna(Vec3(0, 0, -0.64), Vec3(0, 0, 1), gain_dbi=8.0)
    p_far = abs(ChannelModel(antenna_far, LAMBDA).roundtrip(1.0, tag, 1.58)) ** 2
    assert p_near / p_far == pytest.approx(16.0, rel=0.01)


def test_scatterer_adds_path(model):
    tag = Vec3(0, 0, 0)
    hand = Scatterer(Vec3(0, 0, 0.03), rcs_m2=0.003)
    paths = model.resolve_paths(tag, 1.58, [hand])
    kinds = [p.kind for p in paths]
    assert kinds == ["direct", "scatterer"]
    assert paths[1].length > paths[0].length  # reflected path is longer


def test_scatterer_amplitude_decays_with_hop(model):
    tag = Vec3(0, 0, 0)
    near = model.resolve_paths(tag, 1.58, [Scatterer(Vec3(0, 0, 0.03), 0.003)])[1]
    far = model.resolve_paths(tag, 1.58, [Scatterer(Vec3(0, 0.2, 0.03), 0.003)])[1]
    assert near.amplitude > far.amplitude


def test_shadow_attenuation_local(model):
    hand_over = Scatterer(Vec3(0, 0, 0.02), 0.003, shadow_depth_db=12.0)
    on_tag = model.shadow_attenuation_db(Vec3(0, 0, 0), [hand_over])
    off_tag = model.shadow_attenuation_db(Vec3(0.12, 0, 0), [hand_over])
    assert on_tag > 5.0
    assert off_tag < 0.5


def test_detuning_phase_local(model):
    hand = Scatterer(Vec3(0, 0, 0.02), 0.003, detune_rad=2.4)
    on_tag = model.detuning_phase_rad(Vec3(0, 0, 0), [hand])
    neighbour = model.detuning_phase_rad(Vec3(0.06, 0, 0), [hand])
    far = model.detuning_phase_rad(Vec3(0.18, 0, 0), [hand])
    assert on_tag > 1.5
    assert neighbour < on_tag / 2.0
    assert far < 0.05


def test_occlusion_reduces_direct_amplitude(model):
    tag = Vec3(0, 0, 0)
    clear = model.resolve_paths(tag, 1.58)[0].amplitude
    blocked = model.resolve_paths(tag, 1.58, direct_extra_loss_db=6.0)[0].amplitude
    assert blocked == pytest.approx(clear * math.sqrt(db_to_linear(-6.0)))


def test_reflector_image_adds_coherent_path():
    antenna = ReaderAntenna(Vec3(0, 0, -0.32), Vec3(0, 0, 1), gain_dbi=8.0)
    image = (Vec3(0, 0, -6.0), 0.3 + 0.0j)
    model = ChannelModel(antenna, LAMBDA, reflector_images=[image])
    paths = model.resolve_paths(Vec3(0, 0, 0), 1.58)
    assert [p.kind for p in paths] == ["direct", "reflector"]
    assert paths[1].length == pytest.approx(6.0, abs=0.01)


def test_invalid_wavelength_rejected():
    antenna = ReaderAntenna(Vec3(0, 0, -1), Vec3(0, 0, 1))
    with pytest.raises(ValueError):
        ChannelModel(antenna, 0.0)


def test_incident_power_rejects_nonpositive_tx(model):
    with pytest.raises(ValueError):
        model.incident_power(0.0, Vec3(0, 0, 0), 1.0)
