import pytest

from repro.physics.coupling import (
    ALL_DESIGNS,
    TAG_DESIGN_A,
    TAG_DESIGN_B,
    TAG_DESIGN_D,
    TagAntennaProfile,
    aggregate_shadow_loss_db,
    alternating_facing_pattern,
    design_by_name,
    pair_shadow_loss_db,
)
from repro.physics.geometry import GridLayout, Vec3


def test_four_designs_with_distinct_rcs():
    rcs = [d.rcs_m2 for d in ALL_DESIGNS]
    assert len(set(rcs)) == 4
    assert TAG_DESIGN_B.rcs_m2 == min(rcs)   # AZ-E53-class, smallest
    assert TAG_DESIGN_D.rcs_m2 == max(rcs)


def test_design_lookup():
    assert design_by_name("B") is TAG_DESIGN_B
    with pytest.raises(KeyError):
        design_by_name("Z")


def test_profile_validation():
    with pytest.raises(ValueError):
        TagAntennaProfile("X", rcs_m2=0.0, size_m=0.05)
    with pytest.raises(ValueError):
        TagAntennaProfile("X", rcs_m2=0.001, size_m=0.0)


def test_pair_loss_decays_with_distance():
    losses = [pair_shadow_loss_db(d, TAG_DESIGN_D) for d in (0.03, 0.06, 0.12)]
    assert losses[0] > losses[1] > losses[2]
    assert losses[2] < 1.0  # negligible beyond ~12 cm (paper IV-B.1)


def test_pair_loss_scales_with_rcs():
    assert pair_shadow_loss_db(0.03, TAG_DESIGN_D) > pair_shadow_loss_db(
        0.03, TAG_DESIGN_B
    )


def test_opposite_facing_suppresses_coupling():
    same = pair_shadow_loss_db(0.03, TAG_DESIGN_D, same_facing=True)
    opposite = pair_shadow_loss_db(0.03, TAG_DESIGN_D, same_facing=False)
    assert opposite < 0.2 * same


def test_pair_loss_validates_separation():
    with pytest.raises(ValueError):
        pair_shadow_loss_db(0.0, TAG_DESIGN_A)


def test_aggregate_monotone_in_population():
    target = Vec3(0, 0, -0.03)
    small = GridLayout(rows=5, cols=1, pitch=0.06).positions()
    large = GridLayout(rows=5, cols=3, pitch=0.06).positions()
    assert aggregate_shadow_loss_db(target, large, TAG_DESIGN_D) >= (
        aggregate_shadow_loss_db(target, small, TAG_DESIGN_D)
    )


def test_aggregate_saturates():
    target = Vec3(0, 0, -0.01)
    huge = GridLayout(rows=9, cols=9, pitch=0.03).positions()
    assert aggregate_shadow_loss_db(target, huge, TAG_DESIGN_D) <= 26.0


def test_aggregate_skips_collocated_tag():
    target = Vec3(0, 0, 0)
    loss = aggregate_shadow_loss_db(target, [target], TAG_DESIGN_D)
    assert loss == 0.0


def test_alternating_pattern_checkerboard():
    grid = alternating_facing_pattern(3, 3)
    assert grid[0][0] != grid[0][1]
    assert grid[0][0] != grid[1][0]
    assert grid[0][0] == grid[1][1]
    with pytest.raises(ValueError):
        alternating_facing_pattern(0, 3)
