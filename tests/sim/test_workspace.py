"""Workspace layer: tile geometry, 1x1 golden bit-identity, 2x1 stitching.

The load-bearing contract (DESIGN.md §15): a 1x1 workspace IS today's
single pad — every log it produces must be float-exact identical to the
solo ``SessionRunner`` path, not merely statistically equivalent.  The
2x1 tests then exercise what the abstraction adds: a boundary-crossing
letter recognized from the merged stream, with a finite stitched
trajectory error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.rfid.deployment import WorkspaceLayout, deploy_tile
from repro.sim.runner import SessionRunner, WorkspaceRunner
from repro.sim.scenario import ScenarioConfig, build_scenario
from repro.sim.workspace import WorkspaceConfig, build_workspace


def _assert_logs_equal(a, b):
    assert len(a) == len(b)
    for col_a, col_b in zip(a.columns(), b.columns()):
        assert np.array_equal(col_a, col_b)


# ----------------------------------------------------------------------
# Tile geometry.


def test_layout_validation():
    with pytest.raises(ValueError):
        WorkspaceLayout(tiles_x=0)
    with pytest.raises(ValueError):
        WorkspaceLayout(rows=0)
    with pytest.raises(ValueError):
        WorkspaceLayout(pitch=0.0)


@pytest.mark.parametrize("tiles_x,tiles_y", [(1, 1), (2, 1), (2, 2), (3, 2)])
def test_tile_origin_continues_the_lattice(tiles_x, tiles_y):
    ws = WorkspaceLayout(tiles_x=tiles_x, tiles_y=tiles_y, rows=3, cols=4, pitch=0.05)
    combined = ws.combined_layout()
    tile = ws.tile_layout()
    for t in range(ws.tile_count):
        origin = ws.tile_origin(t)
        for local in range(tile.rows * tile.cols):
            got = origin + tile.position(*divmod(local, tile.cols))
            g = ws.global_index(t, local)
            want = combined.position(*divmod(g, combined.cols))
            assert np.allclose(
                (got.x, got.y, got.z), (want.x, want.y, want.z), atol=1e-12
            )


def test_one_by_one_layout_degenerates_to_identity():
    ws = WorkspaceLayout()
    origin = ws.tile_origin(0)
    assert (origin.x, origin.y, origin.z) == (0.0, 0.0, 0.0)
    for local in range(ws.rows * ws.cols):
        assert ws.global_index(0, local) == local


def test_global_index_round_trips():
    ws = WorkspaceLayout(tiles_x=3, tiles_y=2, rows=4, cols=5)
    seen = set()
    for t in range(ws.tile_count):
        for local in range(ws.rows * ws.cols):
            g = ws.global_index(t, local)
            assert ws.tile_of_global(g) == t
            seen.add(g)
    assert seen == set(range(ws.tiles_x * ws.tiles_y * ws.rows * ws.cols))


def test_locate_clamps_to_grid():
    ws = WorkspaceLayout(tiles_x=2, tiles_y=1)
    assert ws.locate(-0.05, 0.0) == 0   # left half of the seam
    assert ws.locate(0.05, 0.0) == 1    # right half
    assert ws.locate(-10.0, 0.0) == 0   # far outside clamps to nearest
    assert ws.locate(10.0, 0.0) == 1


def test_deploy_tile_rewrites_indices_and_epcs():
    ws = WorkspaceLayout(tiles_x=2, tiles_y=1)
    rng = np.random.default_rng(3)
    tags = deploy_tile(rng, ws, tile=1)
    indices = sorted(t.index for t in tags)
    assert indices == sorted(
        ws.global_index(1, local) for local in range(ws.rows * ws.cols)
    )
    assert len({t.epc for t in tags}) == len(tags)
    # Positions stay in the tile's LOCAL frame: the tile's engine and
    # static_base precompute must match a solo pad bit-for-bit.
    local_tags = deploy_tile(np.random.default_rng(3), WorkspaceLayout(), tile=0)
    for g_tag, l_tag in zip(tags, local_tags):
        assert np.allclose(
            (g_tag.position.x, g_tag.position.y, g_tag.position.z),
            (l_tag.position.x, l_tag.position.y, l_tag.position.z),
        )


# ----------------------------------------------------------------------
# 1x1 golden bit-identity with the solo pad.


@pytest.fixture(scope="module")
def solo_runner():
    return SessionRunner(build_scenario(ScenarioConfig(seed=7)))


@pytest.fixture(scope="module")
def ws_runner_1x1():
    return WorkspaceRunner(build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7))))


def test_1x1_static_log_bit_identical(solo_runner, ws_runner_1x1):
    _assert_logs_equal(solo_runner.static_log, ws_runner_1x1.static_log)


def test_1x1_session_log_bit_identical(solo_runner, ws_runner_1x1):
    script = script_for_motion(Motion(StrokeKind.HBAR), np.random.default_rng(99))
    _assert_logs_equal(
        solo_runner.run_script(script), ws_runner_1x1.run_script(script)
    )


def test_1x1_letter_recognition_identical(solo_runner, ws_runner_1x1):
    script = script_for_letter("L", np.random.default_rng(4))
    solo = solo_runner.pad.recognize_letter(solo_runner.run_script(script))
    tiled = ws_runner_1x1.pad.recognize_letter(ws_runner_1x1.run_script(script))
    assert solo.letter == tiled.letter == "L"
    assert [s.label for s in solo.strokes] == [s.label for s in tiled.strokes]


# ----------------------------------------------------------------------
# 2x1: cross-tile merge and stitching.


@pytest.fixture(scope="module")
def ws_runner_2x1():
    return WorkspaceRunner(
        build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7), tiles_x=2))
    )


def test_2x1_merged_log_is_time_ordered_and_dual_port(ws_runner_2x1):
    log = ws_runner_2x1.workspace.collect(1.0)
    ts, _, _, _, _, port, _ = log.columns()
    assert np.all(np.diff(ts) >= 0)
    assert set(np.unique(port).astype(int)) == {1, 2}


def test_2x1_boundary_crossing_letter_recognized():
    # A fresh runner so the trial is deterministic regardless of how many
    # collects other tests have drawn from the shared fixture's RNGs.
    runner = WorkspaceRunner(
        build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7), tiles_x=2))
    )
    script = script_for_letter("L", runner.rng)
    log = runner.run_script(script)
    # The script really does cross the tile seam at x=0.
    xs = [p.position.x for p in script.true_trajectory(dt=0.05)]
    assert min(xs) < 0.0 < max(xs)
    result = runner.pad.recognize_letter(log)
    assert result.letter == "L"
    err = runner.stitched_trajectory_error(log, script)
    assert err is not None
    assert err < 0.08  # within ~a tag pitch, same bar as ext_tracking


def test_workspace_tile_count_and_rng(ws_runner_2x1):
    ws = ws_runner_2x1.workspace
    assert ws.tile_count == 2
    assert ws.rng is ws.tiles[0].rng
