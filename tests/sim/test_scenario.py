import math

import pytest

from repro.sim.scenario import Scenario, ScenarioConfig, build_scenario


def test_default_scenario_matches_prototype():
    s = build_scenario()
    assert s.layout.rows == 5 and s.layout.cols == 5
    assert len(s.array) == 25
    assert s.config.mount == "nlos"
    assert s.antenna.position.z == pytest.approx(-0.32)


def test_nlos_antenna_behind_plane():
    s = build_scenario(ScenarioConfig(mount="nlos", reader_distance=0.5))
    assert s.antenna.position.z == pytest.approx(-0.5)
    assert s.antenna.boresight.z > 0


def test_los_antenna_overhead():
    s = build_scenario(ScenarioConfig(mount="los"))
    assert s.antenna.position.z > 0.5
    assert s.antenna.boresight.z < 0  # looking down at the pad


def test_angle_tilts_boresight():
    straight = build_scenario(ScenarioConfig(reader_angle_deg=0.0))
    tilted = build_scenario(ScenarioConfig(reader_angle_deg=45.0))
    assert abs(tilted.antenna.boresight.x) > abs(straight.antenna.boresight.x)


def test_reader_inherits_config():
    s = build_scenario(ScenarioConfig(tx_power_dbm=20.0, mount="los"))
    reader = s.make_reader()
    assert reader.config.tx_power_dbm == 20.0
    assert reader.config.los_occlusion is True


def test_seed_determinism():
    a = build_scenario(ScenarioConfig(seed=5))
    b = build_scenario(ScenarioConfig(seed=5))
    assert [t.theta_tag for t in a.array] == [t.theta_tag for t in b.array]


def test_different_seeds_differ():
    a = build_scenario(ScenarioConfig(seed=5))
    b = build_scenario(ScenarioConfig(seed=6))
    assert [t.theta_tag for t in a.array] != [t.theta_tag for t in b.array]


def test_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(mount="wall")
    with pytest.raises(ValueError):
        ScenarioConfig(reader_distance=0.0)


def test_location_preset_applied():
    s = build_scenario(ScenarioConfig(location=4))
    assert s.environment.name == "location-4"
