"""Shared-memory columnar log transport (repro.sim.shm)."""

from __future__ import annotations

import numpy as np

from repro.rfid.reports import ReportLog
from repro.sim.shm import pack_logs, unpack_logs


def _make_log(rng: np.random.Generator, rows: int, port: int = 1) -> ReportLog:
    ts = np.sort(rng.uniform(0.0, 3.0, rows))
    tag = rng.integers(0, 5, rows).astype(np.int64)
    log = ReportLog()
    log.extend_columns(
        ts,
        tag,
        rng.uniform(0.0, 6.28, rows),
        rng.uniform(-70.0, -30.0, rows),
        rng.standard_normal(rows),
        [f"E2000000000000000000{int(t):04d}" for t in tag.tolist()],
        antenna_port=port,
    )
    return log


def _assert_logs_equal(a: ReportLog, b: ReportLog) -> None:
    ca, cb = a.columns(), b.columns()
    for va, vb in zip(ca, cb):
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb)
            assert va.dtype == vb.dtype
        else:
            assert list(va) == list(vb)


class TestPackUnpackRoundTrip:
    def test_round_trip_is_exact(self, rng):
        logs = [_make_log(rng, 40), _make_log(rng, 7, port=2), _make_log(rng, 0)]
        kind, payload = pack_logs(logs)
        assert kind == "shm"  # Linux CI always has shared_memory
        out = unpack_logs(kind, payload)
        assert len(out) == 3
        for orig, got in zip(logs, out):
            _assert_logs_equal(orig, got)

    def test_none_entries_survive(self, rng):
        logs = [None, _make_log(rng, 12), None]
        kind, payload = pack_logs(logs)
        out = unpack_logs(kind, payload)
        assert out[0] is None and out[2] is None
        _assert_logs_equal(logs[1], out[1])

    def test_empty_chunk(self):
        kind, payload = pack_logs([])
        assert unpack_logs(kind, payload) == []

    def test_pickle_fallback_round_trips(self, rng):
        logs = [_make_log(rng, 9)]
        out = unpack_logs("pickle", list(logs))
        _assert_logs_equal(logs[0], out[0])


class TestBatteryLogTransport:
    def test_parallel_collect_logs_equal_workers1(self):
        from repro.motion.strokes import all_motions
        from repro.sim.runner import SessionRunner
        from repro.sim.scenario import ScenarioConfig, build_scenario

        motions = all_motions()[:2]
        r1 = SessionRunner(build_scenario(ScenarioConfig(seed=29)))
        t1 = r1.run_motion_battery(motions, 1, workers=1, collect_logs=True)
        r2 = SessionRunner(build_scenario(ScenarioConfig(seed=29)))
        t2 = r2.run_motion_battery(motions, 1, workers=2, collect_logs=True)
        assert all(t.log is not None and len(t.log) > 0 for t in t1)
        for a, b in zip(t1, t2):
            _assert_logs_equal(a.log, b.log)
