import pytest

from repro.motion.strokes import Direction, Motion, StrokeKind
from repro.sim.metrics import score_motion_trials
from repro.sim.runner import MotionTrial, SessionRunner


def test_runner_calibrates_on_construction(shared_runner):
    assert shared_runner.pad.calibration is not None
    assert len(shared_runner.static_log) > 100


def test_run_motion_returns_scored_trial(shared_runner):
    trial = shared_runner.run_motion(Motion(StrokeKind.VBAR))
    assert trial.truth.kind is StrokeKind.VBAR
    assert trial.log_size > 50
    assert trial.detected


def test_click_direction_always_correct_when_detected(shared_runner):
    trial = shared_runner.run_motion(Motion(StrokeKind.CLICK))
    if trial.shape_correct:
        assert trial.direction_correct


def test_motion_battery_size(shared_runner):
    motions = [Motion(StrokeKind.HBAR), Motion(StrokeKind.VBAR)]
    trials = shared_runner.run_motion_battery(motions, repeats=2)
    assert len(trials) == 4


def test_battery_accuracy_reasonable(shared_runner):
    motions = [
        Motion(StrokeKind.HBAR, Direction.FORWARD),
        Motion(StrokeKind.VBAR, Direction.FORWARD),
        Motion(StrokeKind.SLASH, Direction.FORWARD),
    ]
    counts = score_motion_trials(shared_runner.run_motion_battery(motions, 3))
    assert counts.accuracy >= 0.7


def test_run_letter_trial_fields(shared_runner):
    trial = shared_runner.run_letter("T")
    assert trial.truth == "T"
    assert len(trial.true_stroke_intervals) == 2
    assert trial.true_stroke_tokens == ("hbar", "vbar")


def test_letter_battery(shared_runner):
    trials = shared_runner.run_letter_battery(["I", "L"], repeats=1)
    assert [t.truth for t in trials] == ["I", "L"]


def test_motion_trial_scoring_logic():
    trial = MotionTrial(truth=Motion(StrokeKind.HBAR), observed=None, log_size=0)
    assert not trial.detected
    assert not trial.fully_correct
