"""Worker fault containment: crash/hang recovery must be invisible.

``REPRO_PARALLEL_FAULT`` injects a worker crash or hang into the chunk
holding a target trial; the parent must evict the pool, re-execute every
lost trial serially with the *same* per-trial seeds, and deliver a
battery bit-identical to an undisturbed run (plus a
``parallel.trials_recovered`` counter).

Faults are read from the environment inside the worker, and workers fork
lazily on first submit — so each test uses its own scenario seed (its
own pool key) and tears every pool down afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.strokes import all_motions
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.sim.parallel import shutdown_pools
from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario


@pytest.fixture(autouse=True)
def _fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


def _sig(trials):
    return [
        (
            t.truth.label,
            None if t.observed is None else t.observed.label,
            t.log_size,
        )
        for t in trials
    ]


def _battery(seed: int, monkeypatch, fault: str | None, timeout_s: str | None):
    motions = all_motions()[:2]
    if fault is None:
        monkeypatch.delenv("REPRO_PARALLEL_FAULT", raising=False)
    else:
        monkeypatch.setenv("REPRO_PARALLEL_FAULT", fault)
    if timeout_s is None:
        monkeypatch.delenv("REPRO_TRIAL_TIMEOUT_S", raising=False)
    else:
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT_S", timeout_s)
    monkeypatch.setenv("REPRO_PARALLEL_CHUNKS", "2")
    with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=seed)))
        trials = runner.run_motion_battery(motions, 1, workers=2)
        counters = dict(metrics.state()["counters"])
    shutdown_pools()
    return trials, counters


class TestCrashRecovery:
    def test_crashed_chunk_is_reexecuted_bit_identically(self, monkeypatch):
        faulted, counters = _battery(
            31, monkeypatch, fault="crash:1", timeout_s=None
        )
        clean, clean_counters = _battery(31, monkeypatch, fault=None, timeout_s=None)
        assert _sig(faulted) == _sig(clean)
        assert counters["parallel.trials_recovered"] == 1.0
        assert "parallel.trials_recovered" not in clean_counters
        # Trial totals stay exact despite the re-execution.
        assert counters["runner.motion_trials"] == 2.0
        assert clean_counters["runner.motion_trials"] == 2.0


class TestHangRecovery:
    def test_hung_chunk_times_out_and_is_reexecuted(self, monkeypatch):
        # Chunk 0 ([trial 0]) sleeps far past the 1 s/trial budget; the
        # single pool process never reaches chunk 1, whose future is
        # cancelled by the eviction — both chunks recover serially.
        faulted, counters = _battery(
            37, monkeypatch, fault="hang:0:30", timeout_s="1.0"
        )
        clean, _ = _battery(37, monkeypatch, fault=None, timeout_s=None)
        assert _sig(faulted) == _sig(clean)
        assert counters["parallel.trials_recovered"] >= 1.0
        assert counters["runner.motion_trials"] == 2.0


class TestRecoveredLogs:
    def test_collect_logs_survive_recovery(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FAULT", "crash:0")
        monkeypatch.setenv("REPRO_PARALLEL_CHUNKS", "1")
        motions = all_motions()[:2]
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=41)))
        faulted = runner.run_motion_battery(
            motions, 1, workers=2, collect_logs=True
        )
        shutdown_pools()
        monkeypatch.delenv("REPRO_PARALLEL_FAULT")
        runner2 = SessionRunner(build_scenario(ScenarioConfig(seed=41)))
        clean = runner2.run_motion_battery(
            motions, 1, workers=2, collect_logs=True
        )
        assert _sig(faulted) == _sig(clean)
        for a, b in zip(faulted, clean):
            assert a.log is not None and b.log is not None
            for va, vb in zip(a.log.columns(), b.log.columns()):
                if isinstance(va, np.ndarray):
                    assert np.array_equal(va, vb)
