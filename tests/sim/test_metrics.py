import numpy as np
import pytest

from repro.core.events import SegmentedWindow
from repro.sim.metrics import (
    DetectionCounts,
    confusion_matrix,
    empirical_cdf,
    merge_segmentation_scores,
    per_label_accuracy,
    percentile,
    score_segmentation,
)


class TestDetectionCounts:
    def test_rates(self):
        counts = DetectionCounts(total=20, correct=16, false_positives=3, false_negatives=1)
        assert counts.accuracy == 0.8
        assert counts.fpr == 0.15
        assert counts.fnr == 0.05

    def test_empty(self):
        counts = DetectionCounts(0, 0, 0, 0)
        assert counts.accuracy == 0.0
        assert counts.fpr == 0.0


class TestConfusion:
    def test_matrix_counts(self):
        labels, m = confusion_matrix(["A", "A", "B"], ["A", "B", None])
        assert set(labels) == {"A", "B", "∅"}
        ia, ib, inone = labels.index("A"), labels.index("B"), labels.index("∅")
        assert m[ia, ia] == 1
        assert m[ia, ib] == 1
        assert m[ib, inone] == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            confusion_matrix(["A"], [])

    def test_per_label_accuracy(self):
        acc = per_label_accuracy(["A", "A", "B"], ["A", None, "B"])
        assert acc == {"A": 0.5, "B": 1.0}


class TestSegmentationScore:
    def test_perfect_segmentation(self):
        truths = [(1.0, 2.0), (3.0, 4.0)]
        windows = [SegmentedWindow(1.0, 2.0, 1.0), SegmentedWindow(3.0, 4.0, 1.0)]
        score = score_segmentation(windows, truths)
        assert score.insertion_rate == 0.0
        assert score.underfill_rate == 0.0
        assert score.miss_rate == 0.0

    def test_insertion_detected(self):
        truths = [(1.0, 2.0)]
        windows = [SegmentedWindow(1.0, 2.0, 1.0), SegmentedWindow(2.4, 2.9, 1.0)]
        score = score_segmentation(windows, truths)
        assert score.insertions == 1
        assert score.insertion_rate == 0.5

    def test_underfill_detected(self):
        truths = [(1.0, 3.0)]
        windows = [SegmentedWindow(1.0, 1.5, 1.0)]  # 25% coverage
        score = score_segmentation(windows, truths)
        assert score.underfills == 1
        assert score.misses == 0

    def test_miss_counts_as_underfill(self):
        truths = [(1.0, 2.0)]
        score = score_segmentation([], truths)
        assert score.misses == 1
        assert score.underfills == 1

    def test_merge(self):
        a = score_segmentation([], [(0.0, 1.0)])
        b = score_segmentation([SegmentedWindow(0.0, 1.0, 1.0)], [(0.0, 1.0)])
        merged = merge_segmentation_scores([a, b])
        assert merged.true_strokes == 2
        assert merged.misses == 1


class TestDistributions:
    def test_empirical_cdf(self):
        values, fracs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert fracs[-1] == 1.0

    def test_percentile(self):
        assert percentile(list(range(101)), 90.0) == pytest.approx(90.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)
