"""Worker telemetry relay: parallel batteries must not lose or skew totals.

The acceptance check for the cross-process telemetry hub: counter totals,
histograms, and relayed span sets must be identical whether a battery ran
on 1 worker or 2.  (Serial ``workers=0`` threads a single shared RNG
through the trials — a *different, equally valid* draw sequence — so only
structural counters, not read counts, are comparable there; see
DESIGN.md §12.)
"""

from __future__ import annotations

from repro.motion.strokes import all_motions
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.obs.trace import Tracer, scoped_tracer
from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario

#: The only state allowed to differ across worker counts: it *reports*
#: the worker count.
WORKER_GAUGE = "runner.battery_workers"


def _observed_battery(workers: int):
    """Run a 3-motion battery under scoped registries; return their state."""
    motions = all_motions()[:3]
    with scoped_tracer(Tracer(enabled=True)) as tracer, scoped_metrics(
        MetricsRegistry(enabled=True)
    ) as metrics:
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        trials = runner.run_motion_battery(motions, 1, workers=workers)
        state = metrics.state()
        spans = list(tracer.finished)
    return trials, state, spans


class TestWorkerCountInvariance:
    def test_merged_totals_match_across_worker_counts(self):
        _, s1, spans1 = _observed_battery(workers=1)
        _, s2, spans2 = _observed_battery(workers=2)
        assert s1["counters"] == s2["counters"]
        assert s1["histograms"] == s2["histograms"]
        g1 = {k: v for k, v in s1["gauges"].items() if k != WORKER_GAUGE}
        g2 = {k: v for k, v in s2["gauges"].items() if k != WORKER_GAUGE}
        assert g1 == g2
        assert s1["gauges"][WORKER_GAUGE] == 1.0
        assert s2["gauges"][WORKER_GAUGE] == 2.0

    def test_relayed_spans_cover_every_trial(self):
        trials, state, spans = _observed_battery(workers=2)
        trial_spans = [s for s in spans if s.name == "trial.motion"]
        assert len(trial_spans) == len(trials) == 3
        assert all(s.attrs.get("relayed") is True for s in trial_spans)
        assert all(s.duration > 0.0 for s in trial_spans)
        # The relay message itself is counted.
        assert state["counters"]["parallel.snapshots_merged"] == 3.0

    def test_worker_calibration_telemetry_is_discarded(self):
        """Init-time calibration must not scale totals with worker count.

        Each worker calibrates its own runner at pool init; if that
        telemetry leaked into the snapshots, a 2-worker run would report
        roughly twice the calibration reads of a 1-worker run — which the
        counter-equality test above would catch.  Here we pin the
        mechanism: trial counters count exactly the trials.
        """
        _, state, _ = _observed_battery(workers=2)
        assert state["counters"]["runner.motion_trials"] == 3.0
        assert state["counters"]["runner.batteries"] == 1.0

    def test_serial_structural_counters_match_parallel(self):
        _, serial, _ = _observed_battery(workers=0)
        _, parallel, _ = _observed_battery(workers=2)
        # Trial/battery structure is RNG-independent and must agree even
        # though serial threads a different draw sequence (read counts and
        # histograms legitimately differ).
        for key in ("runner.motion_trials", "runner.batteries"):
            assert serial["counters"][key] == parallel["counters"][key]
        assert serial["counters"]["reader.reads"] > 0
        assert parallel["counters"]["reader.reads"] > 0

    def test_disabled_registries_relay_nothing(self):
        motions = all_motions()[:2]
        with scoped_tracer(Tracer(enabled=False)) as tracer, scoped_metrics(
            MetricsRegistry(enabled=False)
        ) as metrics:
            runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
            trials = runner.run_motion_battery(motions, 1, workers=2)
            assert len(trials) == 2
            assert metrics.state()["counters"] == {}
            assert tracer.finished == []


def _observed_two_batteries(workers: int):
    """Two batteries through the same scoped registries (and, for
    ``workers >= 1``, the same warmed persistent pool)."""
    motions = all_motions()[:3]
    with scoped_tracer(Tracer(enabled=True)) as tracer, scoped_metrics(
        MetricsRegistry(enabled=True)
    ) as metrics:
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        runner.run_motion_battery(motions, 1, workers=workers)
        runner.run_motion_battery(motions, 1, workers=workers)
        state = metrics.state()
        spans = list(tracer.finished)
    return state, spans


class TestWarmWorkerReuse:
    """Persistent workers must reset per-trial telemetry between reuses.

    The second battery runs on workers that already served the first; if
    any trial-scoped state leaked across reuse, the 1-vs-2-worker totals
    (or the exact trial counts) would diverge.
    """

    def test_reused_pool_totals_match_across_worker_counts(self):
        s1, _ = _observed_two_batteries(workers=1)
        s2, _ = _observed_two_batteries(workers=2)
        assert s1["counters"] == s2["counters"]
        assert s1["histograms"] == s2["histograms"]

    def test_reused_pool_counts_exactly_both_batteries(self):
        state, spans = _observed_two_batteries(workers=2)
        counters = state["counters"]
        assert counters["runner.motion_trials"] == 6.0
        assert counters["runner.batteries"] == 2.0
        # One relayed snapshot per trial — calibration telemetry was
        # discarded once at worker init, never per battery.
        assert counters["parallel.snapshots_merged"] == 6.0
        trial_spans = [s for s in spans if s.name == "trial.motion"]
        assert len(trial_spans) == 6
        assert all(s.attrs.get("relayed") is True for s in trial_spans)
