"""Tests for the process-pool battery runner (repro.sim.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion.strokes import all_motions
from repro.sim.parallel import resolve_workers, trial_rng, workers_override
from repro.sim.runner import SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario


def _motion_sig(trials):
    return [
        (
            t.truth.label,
            None if t.observed is None else t.observed.label,
            t.log_size,
        )
        for t in trials
    ]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 0

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers()

    def test_override_context(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with workers_override(4):
            assert resolve_workers() == 4
            with workers_override(None):  # None leaves the setting alone
                assert resolve_workers() == 4
        assert resolve_workers() == 0


class TestTrialRng:
    def test_deterministic_per_index(self):
        a = trial_rng(11, 3).standard_normal(4)
        b = trial_rng(11, 3).standard_normal(4)
        assert np.array_equal(a, b)

    def test_independent_across_indices(self):
        a = trial_rng(11, 0).standard_normal(4)
        b = trial_rng(11, 1).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_negative_seed_accepted(self):
        # Scenario seeds are arbitrary ints; SeedSequence entropy must not
        # blow up on negatives (folded mod 2**63).
        trial_rng(-7, 0).standard_normal(1)


class TestParallelBattery:
    def test_worker_count_does_not_change_results(self):
        motions = all_motions()[:3]
        r1 = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        t1 = r1.run_motion_battery(motions, 1, workers=1)
        r4 = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        t4 = r4.run_motion_battery(motions, 1, workers=4)
        assert len(t1) == len(motions)
        assert _motion_sig(t1) == _motion_sig(t4)

    def test_parallel_battery_is_rerun_stable(self):
        motions = all_motions()[:2]
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        a = runner.run_motion_battery(motions, 1, workers=2)
        b = runner.run_motion_battery(motions, 1, workers=2)
        assert _motion_sig(a) == _motion_sig(b)

    def test_letter_battery_parallel(self):
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        a = runner.run_letter_battery(["T"], 1, workers=1)
        b = runner.run_letter_battery(["T"], 1, workers=2)
        assert [(t.truth, t.result.letter) for t in a] == [
            (t.truth, t.result.letter) for t in b
        ]

    def test_serial_default_unchanged(self, monkeypatch):
        # workers unset + no env -> the legacy shared-RNG serial loop.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        motions = all_motions()[:2]
        a = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        b = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        assert _motion_sig(a.run_motion_battery(motions, 1)) == _motion_sig(
            b.run_motion_battery(motions, 1)
        )


class TestChunkLayoutInvariance:
    def test_chunk_count_does_not_change_logs(self, monkeypatch):
        # Chunking is pure scheduling: 1 fat lockstep chunk vs 3 narrow
        # ones must produce byte-for-byte the same battery.
        motions = all_motions()[:3]
        monkeypatch.setenv("REPRO_PARALLEL_CHUNKS", "1")
        r1 = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        t1 = r1.run_motion_battery(motions, 1, workers=4, collect_logs=True)
        monkeypatch.setenv("REPRO_PARALLEL_CHUNKS", "3")
        r3 = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        t3 = r3.run_motion_battery(motions, 1, workers=4, collect_logs=True)
        assert _motion_sig(t1) == _motion_sig(t3)
        for a, b in zip(t1, t3):
            assert a.log is not None and b.log is not None
            for va, vb in zip(a.log.columns(), b.log.columns()):
                if isinstance(va, np.ndarray):
                    assert np.array_equal(va, vb)
                else:
                    assert list(va) == list(vb)

    def test_chunks_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CHUNKS", "lots")
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        with pytest.raises(ValueError):
            runner.run_motion_battery(all_motions()[:1], 1, workers=2)

    def test_timeout_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_TIMEOUT_S", "forever")
        runner = SessionRunner(build_scenario(ScenarioConfig(seed=11)))
        with pytest.raises(ValueError):
            runner.run_motion_battery(all_motions()[:1], 1, workers=2)
