"""Failure injection: the pipeline must degrade gracefully, not crash.

Real deployments lose tags (detuned by a metal object, torn off, IC
death), see partial streams, and get clock-skewed reports.  Each test
breaks one assumption and checks the system stays sane.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.pipeline import RFIPad
from repro.motion.script import script_for_motion
from repro.motion.strokes import Motion, StrokeKind, all_motions
from repro.rfid.reports import ReportLog, TagReadReport
from repro.sim.metrics import score_motion_trials
from repro.sim.runner import MotionTrial, SessionRunner
from repro.sim.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def injected():
    """A runner whose array has two dead tags (IC never powers up)."""
    runner = SessionRunner(build_scenario(ScenarioConfig(seed=13)))
    # Kill two tags *after* construction, then recalibrate as a deployment
    # would: the dead tags simply vanish from the report stream.
    for idx in (7, 18):
        runner.reader.array.tags[idx].ic_sensitivity_dbm = 50.0
    static = runner.reader.collect_static(3.0)
    runner.pad = RFIPad(runner.scenario.layout)
    runner.pad.calibrate_from(static)
    runner.static_log = static
    return runner


class TestDeadTags:
    def test_dead_tags_absent_from_stream(self, injected):
        log = injected.reader.collect_static(1.0)
        assert 7 not in log.tag_indices()
        assert 18 not in log.tag_indices()

    def test_calibration_covers_survivors(self, injected):
        assert len(injected.pad.calibration.tags) == 23

    def test_recognition_still_works(self, injected):
        trials = [
            injected.run_motion(m)
            for m in (Motion(StrokeKind.HBAR), Motion(StrokeKind.VBAR))
            for _ in range(3)
        ]
        counts = score_motion_trials(trials)
        assert counts.accuracy >= 0.5  # degraded is fine; dead is not


class TestCorruptStreams:
    def test_truncated_log(self, shared_runner):
        script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
        log = shared_runner.run_script(script)
        t0, _ = script.stroke_intervals()[0]
        # Keep only the first half of the stroke.
        truncated = log.slice_time(0.0, t0 + 0.4)
        result = shared_runner.pad.detect_motion(truncated)  # must not raise
        assert result is None or result.kind is not None

    def test_single_tag_log(self, shared_runner):
        full = shared_runner.reader.collect_static(1.0)
        only_one = ReportLog([r for r in full if r.tag_index == 0])
        assert shared_runner.pad.segment(only_one) == []

    def test_duplicate_timestamps(self, shared_runner):
        log = ReportLog()
        for i in range(40):
            log.append(
                TagReadReport(
                    epc="E-0", tag_index=0, timestamp=1.0,  # all identical
                    phase_rad=1.0, rss_dbm=-40.0,
                )
            )
        # Degenerate time axis: segmentation must not crash or loop.
        assert shared_runner.pad.segment(log) == []

    def test_out_of_order_reports(self, shared_runner):
        script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
        ordered = shared_runner.run_script(script)
        shuffled = list(ordered)
        np.random.default_rng(0).shuffle(shuffled)
        log = ReportLog(shuffled)  # ReportLog re-sorts lazily
        obs = shared_runner.pad.detect_motion(log)
        assert obs is not None

    def test_stray_uncalibrated_tag(self, shared_runner):
        script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
        log = shared_runner.run_script(script)
        # A passer-by's badge tag shows up mid-session.
        log.append(
            TagReadReport(
                epc="STRAY", tag_index=-1, timestamp=1.0,
                phase_rad=0.5, rss_dbm=-55.0,
            )
        )
        obs = shared_runner.pad.detect_motion(log)
        assert obs is not None
        assert obs.kind is StrokeKind.VBAR
