import math

import pytest

from repro.units import (
    DEFAULT_FREQUENCY_HZ,
    TWO_PI,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    quantise,
    watts_to_dbm,
    watts_to_dbm_floor,
    wavelength,
    wrap_phase,
)


def test_wavelength_at_prototype_frequency():
    # 922.38 MHz -> ~32.5 cm, the figure the paper's resolution math uses.
    assert wavelength(DEFAULT_FREQUENCY_HZ) == pytest.approx(0.325, abs=0.001)


def test_wavelength_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        wavelength(0.0)


def test_dbm_watts_roundtrip():
    for dbm in (-60.0, -17.0, 0.0, 30.0, 32.5):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)


def test_watts_to_dbm_rejects_zero():
    with pytest.raises(ValueError):
        watts_to_dbm(0.0)


def test_watts_to_dbm_floor_clamps():
    assert watts_to_dbm_floor(0.0) == -120.0
    assert watts_to_dbm_floor(1e-30, floor_dbm=-90.0) == -90.0


def test_db_linear_roundtrip():
    assert linear_to_db(db_to_linear(8.0)) == pytest.approx(8.0)


def test_wrap_phase_range():
    for value in (-10.0, -0.1, 0.0, 3.0, TWO_PI, 100.0):
        wrapped = wrap_phase(value)
        assert 0.0 <= wrapped < TWO_PI


def test_wrap_phase_preserves_angle():
    assert wrap_phase(TWO_PI + 1.0) == pytest.approx(1.0)
    assert wrap_phase(-1.0) == pytest.approx(TWO_PI - 1.0)


def test_quantise_step():
    assert quantise(0.00151, 0.0015) == pytest.approx(0.0015)
    assert quantise(1.24, 0.5) == pytest.approx(1.0)
    assert quantise(1.26, 0.5) == pytest.approx(1.5)


def test_quantise_disabled_for_nonpositive_step():
    assert quantise(1.234, 0.0) == 1.234
    assert quantise(1.234, -1.0) == 1.234
