"""Workspace tenants on the serving hub: per-tile routing and hygiene.

A hub built with ``tiles=N`` binds every session to a
:class:`~repro.stream.session.WorkspaceSession`; chunks carry an optional
``tile`` header key and route into the cross-tile watermark merge.  The
finalized event stream must equal the batch pipeline on the merged
workspace log, and the per-tile labeled gauges must vanish when the
session closes (the hub's ``remove_labeled`` sweep).
"""

import asyncio

import pytest

from repro.motion.script import script_for_letter
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.rfid.reports import merge_logs
from repro.serve import HubConfig, LocalFeed, SessionHub
from repro.stream import LetterEvent
from repro.sim.live import iter_chunks
from repro.sim.runner import WorkspaceRunner
from repro.sim.scenario import ScenarioConfig
from repro.sim.workspace import WorkspaceConfig, build_workspace

from ..stream.test_equivalence import assert_letter_equal


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


@pytest.fixture(scope="module")
def ws_runner():
    return WorkspaceRunner(
        build_workspace(WorkspaceConfig(base=ScenarioConfig(seed=7), tiles_x=2))
    )


@pytest.fixture(scope="module")
def tile_capture(ws_runner):
    script = script_for_letter("L", ws_runner.rng)
    tile_logs = ws_runner.workspace.collect_tiles(script.duration, script)
    merged = merge_logs(tile_logs)
    return tile_logs, merged, ws_runner.pad.recognize_letter(merged)


def test_tiles_validated(ws_runner):
    with pytest.raises(ValueError):
        SessionHub(ws_runner.pad, HubConfig(port=0), tiles=0)


def test_workspace_tenant_matches_batch(ws_runner, tile_capture):
    tile_logs, _, batch = tile_capture

    async def main():
        hub = SessionHub(ws_runner.pad, HubConfig(port=0), tiles=2)
        await hub.start(serve_network=False)
        feed = LocalFeed(hub, "ws-tenant")
        chunks = [list(iter_chunks(log, 0.2)) for log in tile_logs]
        for step in range(max(len(c) for c in chunks)):
            for tile, tile_chunks in enumerate(chunks):
                if step < len(tile_chunks):
                    await feed.feed_tile(tile_chunks[step], tile)
        events = await feed.finalize()
        await hub.stop()
        return events

    events = run(main())
    finals = [e for e in events if isinstance(e, LetterEvent)]
    assert finals
    assert_letter_equal(finals[-1].result, batch)


def test_untagged_chunks_route_by_port(ws_runner, tile_capture):
    _, merged, batch = tile_capture

    async def main():
        hub = SessionHub(ws_runner.pad, HubConfig(port=0), tiles=2)
        await hub.start(serve_network=False)
        feed = LocalFeed(hub, "merged-tenant")
        for chunk in iter_chunks(merged, 0.25):
            await feed.feed(chunk)
        events = await feed.finalize()
        await hub.stop()
        return events

    events = run(main())
    finals = [e for e in events if isinstance(e, LetterEvent)]
    assert finals
    assert_letter_equal(finals[-1].result, batch)


def test_per_tile_gauges_removed_at_close(ws_runner, tile_capture):
    tile_logs, _, _ = tile_capture

    async def main(scoped):
        hub = SessionHub(ws_runner.pad, HubConfig(port=0), tiles=2)
        await hub.start(serve_network=False)
        feed = LocalFeed(hub, "ws-gauges")
        for tile, log in enumerate(tile_logs):
            for chunk in iter_chunks(log, 0.5):
                await feed.feed_tile(chunk, tile)
        # The worker thread publishes the labeled gauges asynchronously.
        mid = []
        for _ in range(500):
            mid = [
                k
                for k in scoped.snapshot()["gauges"]
                if "stream.tile_buffered_reads" in k and 'session="ws-gauges"' in k
            ]
            if len(mid) == 2:
                break
            await asyncio.sleep(0.01)
        await feed.finalize()
        await hub.stop()
        return mid

    with scoped_metrics(MetricsRegistry(enabled=True)) as scoped:
        mid = run(main(scoped))
        # One gauge per tile while the session was live...
        assert len(mid) == 2
        assert any('tile="0"' in k for k in mid)
        assert any('tile="1"' in k for k in mid)
        # ...and none once it closed: remove_labeled swept the session.
        after = [
            k
            for k in scoped.snapshot()["gauges"]
            if 'session="ws-gauges"' in k
        ]
        assert after == []
