"""SessionHub behaviour: multiplexing, queue policies, drain, metrics.

Socket tests drive the hub through the real asyncio server + framing
codec; policy tests use the in-process :class:`LocalFeed` with the
``analysis_stall_s`` fault knob to force queue growth deterministically.
"""

import asyncio

import pytest

from repro.motion.script import script_for_letter
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.serve import HubConfig, LocalFeed, SessionHub
from repro.serve.client import ServeClient
from repro.sim.live import iter_chunks


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


@pytest.fixture(scope="module")
def letter_log(shared_runner):
    return shared_runner.run_script(
        script_for_letter("T", shared_runner.rng)
    )


class TestConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            HubConfig(drop_policy="vibes")

    @pytest.mark.parametrize(
        "field", ["max_pending", "batch_sessions", "workers"]
    )
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            HubConfig(**{field: 0})


class TestSocketEndToEnd:
    def test_multiple_sessions_on_one_connection(
        self, shared_runner, letter_log
    ):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start()
            host, port = hub.bound_address
            client = await ServeClient.connect(host, port)
            try:
                handles = [await client.open(f"s{i}") for i in range(3)]
                chunks = list(iter_chunks(letter_log, 0.25))
                # Interleave: every session gets chunk k before any gets k+1.
                for chunk in chunks:
                    for h in handles:
                        await client.send_chunk(h, chunk)
                for h in handles:
                    await client.finalize(h)
                for h in handles:
                    await client.wait_done(h, timeout=60.0)
            finally:
                await client.close()
                await hub.stop()
            return handles

        handles = run(main())
        for h in handles:
            assert h.final_letter() == "T"
            assert h.dropped_chunks == 0
            kinds = [e.get("kind") for e in h.events if e.get("final")]
            assert kinds.count("stroke") == 2 and kinds[-1] == "letter"

    def test_duplicate_session_id_is_an_error(self, shared_runner):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start()
            host, port = hub.bound_address
            client = await ServeClient.connect(host, port)
            try:
                await client.open("dup")
                with pytest.raises(ConnectionError):
                    c2 = await ServeClient.connect(host, port)
                    try:
                        await c2.open("dup")
                    finally:
                        await c2.close()
            finally:
                await client.close()
                await hub.stop()

        run(main())

    def test_scenario_mismatch_warns_in_welcome(self, shared_runner):
        async def main():
            hub = SessionHub(
                shared_runner.pad,
                HubConfig(port=0),
                scenario_meta={"seed": 7, "mount": "nlos"},
            )
            await hub.start()
            host, port = hub.bound_address
            client = await ServeClient.connect(host, port)
            try:
                handle = await client.open(
                    "s", meta={"seed": 11, "mount": "nlos"}
                )
                return handle.warnings
            finally:
                await client.close()
                await hub.stop()

        warnings = run(main())
        assert len(warnings) == 1 and "seed" in warnings[0]

    def test_vanished_connection_aborts_session(
        self, shared_runner, letter_log
    ):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start()
            host, port = hub.bound_address
            client = await ServeClient.connect(host, port)
            handle = await client.open("ghost")
            await client.send_chunk(handle, next(iter_chunks(letter_log, 0.5)))
            await client.close()  # walk away mid-session
            for _ in range(200):
                if hub.open_sessions == 0:
                    break
                await asyncio.sleep(0.01)
            opened, open_now = hub.sessions_opened, hub.open_sessions
            await hub.stop()
            return opened, open_now

        opened, open_now = run(main())
        assert opened == 1 and open_now == 0


class TestQueuePolicies:
    def _stalled_hub(self, pad, policy):
        return SessionHub(
            pad,
            HubConfig(
                port=0,
                max_pending=4,
                drop_policy=policy,
                analysis_stall_s=0.05,
            ),
        )

    def test_oldest_policy_sheds_and_counts(self, shared_runner, letter_log):
        async def main():
            hub = self._stalled_hub(shared_runner.pad, "oldest")
            await hub.start(serve_network=False)
            feed = LocalFeed(hub, "s")
            accepted = 0
            for chunk in iter_chunks(letter_log, 0.1):
                accepted += await feed.feed(chunk)
            await feed.finalize()
            dropped = feed.session.dropped_chunks
            await hub.stop()
            return accepted, dropped

        with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
            accepted, dropped = run(main())
            assert dropped > 0
            # "oldest" accepts the incoming chunk (it sheds a queued one).
            assert accepted > 0
            agg = metrics.counter_value("serve.dropped_chunks")
            labeled = metrics.counter_value(
                'serve.dropped_chunks{policy="oldest"}'
            )
            assert agg == labeled == dropped

    def test_newest_policy_rejects_incoming(self, shared_runner, letter_log):
        async def main():
            hub = self._stalled_hub(shared_runner.pad, "newest")
            await hub.start(serve_network=False)
            feed = LocalFeed(hub, "s")
            rejected = 0
            for chunk in iter_chunks(letter_log, 0.1):
                rejected += not await feed.feed(chunk)
            await feed.finalize()
            dropped = feed.session.dropped_chunks
            await hub.stop()
            return rejected, dropped

        with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
            rejected, dropped = run(main())
            assert rejected > 0 and rejected == dropped
            assert metrics.counter_value(
                'serve.dropped_chunks{policy="newest"}'
            ) == dropped

    def test_block_policy_is_lossless_and_bounded(
        self, shared_runner, letter_log
    ):
        async def main():
            hub = self._stalled_hub(shared_runner.pad, "block")
            await hub.start(serve_network=False)
            feed = LocalFeed(hub, "s")
            max_depth = 0
            for chunk in iter_chunks(letter_log, 0.1):
                assert await feed.feed(chunk)  # block never sheds
                max_depth = max(max_depth, hub.queue_depth)
            events = await feed.finalize()
            dropped = feed.session.dropped_chunks
            await hub.stop()
            return max_depth, dropped, events

        with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
            max_depth, dropped, events = run(main())
            assert dropped == 0
            # The queue is bounded: in_flight work + max_pending pending.
            assert max_depth <= 4 + 4
            assert metrics.counter_value("serve.backpressure_waits") > 0
            letter = [e for e in events if e.final][-1]
            assert letter.result.letter == "T"


class TestDrain:
    def test_stop_finalizes_open_sessions(self, shared_runner, letter_log):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start(serve_network=False)
            feed = LocalFeed(hub, "s")
            for chunk in iter_chunks(letter_log, 0.25):
                await feed.feed(chunk)
            # No client finalize: the drain must flush the session itself.
            await hub.stop(drain=True)
            return feed.events, hub.open_sessions

        events, open_sessions = run(main())
        assert open_sessions == 0
        finals = [e for e in events if e.final]
        assert finals and finals[-1].result.letter == "T"

    def test_draining_hub_refuses_new_sessions(self, shared_runner):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start(serve_network=False)
            hub._stopping = True
            with pytest.raises(RuntimeError):
                LocalFeed(hub, "late")
            hub._stopping = False
            await hub.stop(drain=False)

        run(main())


class TestMetricsHygiene:
    def test_session_labels_cleaned_up_at_close(
        self, shared_runner, letter_log
    ):
        async def main():
            hub = SessionHub(shared_runner.pad, HubConfig(port=0))
            await hub.start(serve_network=False)
            feed = LocalFeed(hub, "tenant-1")
            for chunk in iter_chunks(letter_log, 0.5):
                await feed.feed(chunk)
            # The worker thread sets the labeled gauges asynchronously.
            mid = []
            for _ in range(500):
                mid = [
                    k
                    for k in scoped.snapshot()["gauges"]
                    if 'session="tenant-1"' in k
                ]
                if mid:
                    break
                await asyncio.sleep(0.01)
            await feed.finalize()
            await hub.stop()
            return mid

        with scoped_metrics(MetricsRegistry(enabled=True)) as scoped:
            mid = run(main())
            # Labeled gauges existed while the session was live...
            assert mid
            # ...and are gone once it closed.
            after = [
                k
                for k in scoped.snapshot()["gauges"]
                if 'session="tenant-1"' in k
            ]
            assert after == []
