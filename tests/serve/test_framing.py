"""Framing codec property tests.

The decoder's contract: for ANY fragmentation or coalescing of the byte
stream — one byte at a time, random splits, everything in one buffer —
every frame comes out exactly once, in order, bit-identical.
"""

import numpy as np
import pytest

from repro.motion.script import script_for_letter
from repro.rfid.reports import ReportLog
from repro.serve.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FramingError,
    chunk_log,
    chunk_message,
    decode_chunk,
    encode_frame,
    session_of,
)
from repro.sim.live import iter_chunks


def _messages(shared_runner):
    """A realistic message sequence: hello + a session's chunks + finalize."""
    log = shared_runner.run_script(script_for_letter("T", shared_runner.rng))
    out = [({"type": "hello", "session": "s1", "meta": {"seed": 7}}, b"")]
    for chunk in iter_chunks(log, 0.13):
        out.append(chunk_message("s1", chunk))
    out.append(({"type": "finalize", "session": "s1"}, b""))
    return out


def _feed_fragments(stream: bytes, edges) -> list:
    decoder = FrameDecoder()
    got = []
    for a, b in zip(edges[:-1], edges[1:]):
        got.extend(decoder.feed(stream[a:b]))
    assert decoder.pending_bytes == 0
    return got


def assert_messages_equal(got, sent):
    assert len(got) == len(sent)
    for (gh, gp), (sh, sp) in zip(got, sent):
        assert gh == sh
        assert gp == sp


class TestRoundTrip:
    def test_whole_stream_at_once(self, shared_runner):
        sent = _messages(shared_runner)
        stream = b"".join(encode_frame(h, p) for h, p in sent)
        got = FrameDecoder().feed(stream)
        assert_messages_equal(got, sent)

    def test_byte_at_a_time(self, shared_runner):
        sent = _messages(shared_runner)[:4]  # keep the single-byte walk cheap
        stream = b"".join(encode_frame(h, p) for h, p in sent)
        got = _feed_fragments(stream, list(range(len(stream) + 1)))
        assert_messages_equal(got, sent)

    @pytest.mark.parametrize("trial", range(5))
    def test_random_fragmentation(self, shared_runner, rng, trial):
        sent = _messages(shared_runner)
        stream = b"".join(encode_frame(h, p) for h, p in sent)
        n_cuts = int(rng.integers(1, 64))
        cuts = sorted(int(c) for c in rng.integers(0, len(stream), n_cuts))
        got = _feed_fragments(stream, [0, *cuts, len(stream)])
        assert_messages_equal(got, sent)

    def test_fragments_spanning_frame_boundaries(self, shared_runner):
        sent = _messages(shared_runner)
        frames = [encode_frame(h, p) for h, p in sent]
        stream = b"".join(frames)
        # Cut exactly at, one before, and one after every frame boundary.
        edges = {0, len(stream)}
        offset = 0
        for frame in frames:
            offset += len(frame)
            edges.update((offset - 1, offset, min(offset + 1, len(stream))))
        got = _feed_fragments(stream, sorted(edges))
        assert_messages_equal(got, sent)

    def test_chunk_payload_is_bit_identical(self, shared_runner):
        log = shared_runner.run_script(
            script_for_letter("H", shared_runner.rng)
        )
        for chunk in iter_chunks(log, 0.2):
            header, payload = chunk_message("s", chunk)
            rebuilt = chunk_log(header, payload)
            a = chunk.columns()
            b = rebuilt.columns()
            for col_a, col_b in zip(a[:5], b[:5]):
                assert np.array_equal(col_a, col_b)  # bit-exact float64
            assert list(a[6]) == list(b[6])  # epc column
            assert session_of(header) == "s"

    def test_empty_chunk_round_trips(self):
        header, payload = chunk_message("s", ReportLog())
        assert payload == b""
        ts, tag, phase, rss, dopp, epcs, port = decode_chunk(header, payload)
        assert ts.size == 0 and epcs == [] and port == 1


class TestErrors:
    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(FramingError):
            encode_frame({"type": "chunk"}, b"\0" * (MAX_FRAME_BYTES + 1))

    def test_bad_length_prefix(self):
        with pytest.raises(FramingError):
            FrameDecoder().feed(b"\xff\xff\xff\xff rest")

    def test_header_overruns_body(self):
        body = b"\x00\x00\x00\xff{}"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FramingError):
            FrameDecoder().feed(frame)

    def test_header_not_json(self):
        body = b"\x00\x00\x00\x02!!"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FramingError):
            FrameDecoder().feed(frame)

    def test_header_without_type(self):
        body = b"\x00\x00\x00\x02{}"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FramingError):
            FrameDecoder().feed(frame)

    def test_chunk_payload_size_mismatch(self, shared_runner):
        log = shared_runner.run_script(
            script_for_letter("L", shared_runner.rng)
        )
        chunk = next(iter_chunks(log, 1.0))
        header, payload = chunk_message("s", chunk)
        with pytest.raises(FramingError):
            decode_chunk(header, payload[:-8])

    def test_chunk_missing_epc_mapping(self, shared_runner):
        log = shared_runner.run_script(
            script_for_letter("L", shared_runner.rng)
        )
        chunk = next(iter_chunks(log, 1.0))
        header, payload = chunk_message("s", chunk)
        header = dict(header)
        header["epcs"] = {}
        with pytest.raises(FramingError):
            decode_chunk(header, payload)
