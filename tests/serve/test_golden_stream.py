"""Golden-stream equivalence: hub sessions are bit-identical to batch.

The serving contract (DESIGN.md §14) inherits the streaming contract
(§11): no matter how a session's reads are chunked, how its chunks
interleave with other tenants', or how the dispatcher coalesces and
batches them, the finalized window/stroke/letter stream is exactly — to
the float — what the batch pipeline computes on the whole log.
"""

import asyncio

import pytest

from repro.motion.script import script_for_letter
from repro.serve import HubConfig, LocalFeed, SessionHub
from repro.sim.live import iter_chunks

from tests.stream.test_equivalence import assert_letter_equal, random_chunks


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


LETTERS = ("T", "H", "L")


@pytest.fixture(scope="module")
def letter_logs(shared_runner):
    return {
        letter: shared_runner.run_script(
            script_for_letter(letter, shared_runner.rng)
        )
        for letter in LETTERS
    }


def _hub_events(pad, feeds_chunks, batch_sessions=2):
    """Run N sessions through one hub, chunk lists interleaved round-robin."""

    async def main():
        hub = SessionHub(
            pad, HubConfig(port=0, batch_sessions=batch_sessions)
        )
        await hub.start(serve_network=False)
        feeds = [LocalFeed(hub, f"s{i}") for i in range(len(feeds_chunks))]
        remaining = [list(chunks) for chunks in feeds_chunks]
        while any(remaining):
            for feed, chunks in zip(feeds, remaining):
                if chunks:
                    await feed.feed(chunks.pop(0))
        results = []
        for feed in feeds:
            results.append(await feed.finalize())
        await hub.stop()
        return results

    return run(main())


def _final_windows_strokes_letter(events):
    windows = []
    strokes = []
    letter = None
    for ev in events:
        if not ev.final:
            continue
        if hasattr(ev, "window"):
            windows.append(ev.window)
            if ev.stroke is not None:
                strokes.append(ev.stroke)
        else:
            letter = ev.result
    return windows, strokes, letter


class TestGoldenStream:
    def test_interleaved_sessions_match_batch(self, shared_runner, letter_logs):
        pad = shared_runner.pad
        logs = [letter_logs[letter] for letter in LETTERS]
        chunkings = [list(iter_chunks(log, 0.13)) for log in logs]
        all_events = _hub_events(pad, chunkings)
        for log, letter, events in zip(logs, LETTERS, all_events):
            batch = pad.recognize_letter(log)
            windows, strokes, result = _final_windows_strokes_letter(events)
            assert result is not None and result.letter == letter
            assert windows == list(pad.segment(log))
            assert_letter_equal(result, batch)

    @pytest.mark.parametrize("trial", range(3))
    def test_random_chunkings_and_interleavings(
        self, shared_runner, letter_logs, rng, trial
    ):
        pad = shared_runner.pad
        # Random per-session chunkings, random interleave order via
        # different chunk counts per session, coalescing forced by a
        # 1-batch dispatcher serving 3 tenants.
        logs = [letter_logs[letter] for letter in LETTERS]
        chunkings = [
            random_chunks(log, rng, n_cuts=int(rng.integers(3, 40)))
            for log in logs
        ]
        all_events = _hub_events(pad, chunkings, batch_sessions=3)
        for log, letter, events in zip(logs, LETTERS, all_events):
            batch = pad.recognize_letter(log)
            _, _, result = _final_windows_strokes_letter(events)
            assert result is not None
            assert_letter_equal(result, batch)

    def test_same_log_many_sessions_identical_streams(
        self, shared_runner, letter_logs, rng
    ):
        # The same log under different chunkings, concurrently: every
        # session must converge to the same finalized stream.
        pad = shared_runner.pad
        log = letter_logs["T"]
        chunkings = [
            list(iter_chunks(log, 0.07)),
            list(iter_chunks(log, 0.31)),
            random_chunks(log, rng, n_cuts=11),
            [log],  # whole-log ingest
        ]
        all_events = _hub_events(pad, chunkings, batch_sessions=4)
        batch = pad.recognize_letter(log)
        for events in all_events:
            windows, _, result = _final_windows_strokes_letter(events)
            assert windows == list(pad.segment(log))
            assert_letter_equal(result, batch)
