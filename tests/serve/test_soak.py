"""Soak test: hundreds of sessions through one hub, bounded memory.

Marked ``slow``: it pushes ~300 sessions through a single in-process hub
and checks that nothing accumulates — the session table drains, the
metrics registry stays bounded (labeled per-session instruments are
removed at close), and RSS growth stays within a modest envelope.
"""

import asyncio
import gc
import resource

import pytest

from repro.motion.script import script_for_letter
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.serve import HubConfig, LocalFeed, SessionHub
from repro.sim.live import iter_chunks

SESSIONS = 300
WAVES = 20  # concurrent sessions per wave


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.mark.slow
def test_soak_many_sessions_bounded_memory(shared_runner):
    log = shared_runner.run_script(script_for_letter("T", shared_runner.rng))
    chunks = list(iter_chunks(log, 0.25))
    pad = shared_runner.pad

    async def one_session(hub, sid):
        feed = LocalFeed(hub, sid)
        for chunk in chunks:
            await feed.feed(chunk)
        events = await feed.finalize()
        finals = [e for e in events if e.final]
        assert finals and finals[-1].result.letter == "T"

    async def main():
        hub = SessionHub(
            pad, HubConfig(port=0, batch_sessions=WAVES, max_pending=16)
        )
        await hub.start(serve_network=False)
        done = 0
        while done < SESSIONS:
            n = min(WAVES, SESSIONS - done)
            await asyncio.gather(
                *(one_session(hub, f"soak-{done + i}") for i in range(n))
            )
            done += n
        opened, open_now = hub.sessions_opened, hub.open_sessions
        await hub.stop()
        return opened, open_now

    with scoped_metrics(MetricsRegistry(enabled=True)) as metrics:
        gc.collect()
        rss_before = _rss_mb()
        opened, open_now = run_soak(main)
        rss_after = _rss_mb()

        assert opened == SESSIONS
        assert open_now == 0
        snap = metrics.snapshot()
        # Per-session labeled instruments must not accumulate: every
        # session's labels are removed at close, so the registry holds
        # only the aggregate serve/stream families.
        leaked = [
            k
            for kind in ("counters", "gauges", "histograms")
            for k in snap[kind]
            if "session=" in k
        ]
        assert leaked == []
        assert metrics.counter_value("serve.sessions_closed") == SESSIONS
        assert metrics.counter_value("serve.dropped_chunks") == 0
        # ru_maxrss is a high-water mark; 300 tiny sessions should not
        # move it by more than a modest envelope.
        assert rss_after - rss_before < 200.0, (
            f"RSS grew {rss_after - rss_before:.0f} MiB over {SESSIONS} sessions"
        )


def run_soak(main):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(main())
    finally:
        loop.close()
