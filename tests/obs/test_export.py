"""Prometheus exposition, lint, and scrape-server tests."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    lint_exposition,
    make_metrics_server,
    sanitize_metric_name,
    to_prometheus,
)
from repro.obs.health import default_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _filled_registry() -> MetricsRegistry:
    metrics = MetricsRegistry(enabled=True)
    metrics.inc("reader.reads", 42.0)
    metrics.set_gauge("reader.read_rate_hz", 215.9)
    metrics.set_gauge("stream.lag_s", 0.5, labels={"session": "pad-1"})
    metrics.observe("stream.event_latency_s", 0.1)
    metrics.observe("stream.event_latency_s", 0.7)
    return metrics


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("reader.read_rate_hz") == (
            "repro_reader_read_rate_hz"
        )

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("5g.rate", namespace="") == "_5g_rate"

    def test_namespace_optional(self):
        assert sanitize_metric_name("a.b", namespace="") == "a_b"


class TestToPrometheus:
    def test_counter_family(self):
        text = to_prometheus(_filled_registry())
        assert "# TYPE repro_reader_reads_total counter" in text
        assert "repro_reader_reads_total 42.0" in text

    def test_gauge_family_with_labels(self):
        text = to_prometheus(_filled_registry())
        assert "repro_reader_read_rate_hz 215.9" in text
        assert 'repro_stream_lag_s{session="pad-1"} 0.5' in text

    def test_histogram_expansion(self):
        text = to_prometheus(_filled_registry())
        lines = text.splitlines()
        buckets = [
            ln for ln in lines
            if ln.startswith("repro_stream_event_latency_s_bucket")
        ]
        assert buckets[-1].startswith(
            'repro_stream_event_latency_s_bucket{le="+Inf"} '
        )
        assert buckets[-1].endswith(" 2")
        assert any(
            ln.startswith("repro_stream_event_latency_s_count") and
            ln.endswith(" 2")
            for ln in lines
        )

    def test_span_families(self):
        tracer = Tracer(enabled=True)
        with tracer.span("detect_motion"):
            with tracer.span("unwrap"):
                pass
        text = to_prometheus(MetricsRegistry(enabled=True), tracer)
        assert 'repro_span_count_total{path="detect_motion"} 1.0' in text
        assert 'repro_span_p95_seconds{path="detect_motion/unwrap"}' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry(enabled=True)) == ""

    def test_generated_output_lints_clean(self):
        tracer = Tracer(enabled=True)
        with tracer.span("detect_motion"):
            pass
        text = to_prometheus(_filled_registry(), tracer)
        assert lint_exposition(text) == []


class TestLint:
    def test_illegal_metric_name(self):
        problems = lint_exposition(
            "# TYPE bad-name counter\nbad-name 1.0\n"
        )
        assert any("illegal metric name" in p for p in problems)

    def test_sample_without_type_header(self):
        problems = lint_exposition("repro_orphan 1.0\n")
        assert any("no preceding # TYPE" in p for p in problems)

    def test_unknown_type(self):
        problems = lint_exposition("# TYPE repro_x exotic\nrepro_x 1.0\n")
        assert any("unknown metric type" in p for p in problems)

    def test_non_numeric_value(self):
        problems = lint_exposition("# TYPE repro_x gauge\nrepro_x banana\n")
        assert any("non-numeric" in p for p in problems)

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 3\n"
        )
        problems = lint_exposition(text)
        assert any("not cumulative" in p for p in problems)

    def test_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        problems = lint_exposition(text)
        assert any('missing le="+Inf"' in p for p in problems)

    def test_corrupting_valid_output_is_caught(self):
        text = to_prometheus(_filled_registry())
        corrupted = text.replace("# TYPE repro_reader_reads_total counter\n", "")
        assert lint_exposition(text) == []
        assert lint_exposition(corrupted) != []


class TestMetricsServer:
    def _serve(self, **kw):
        """Bind on an ephemeral port and serve on a background thread."""
        server = make_metrics_server(port=0, **kw)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def _get(self, server, path):
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as resp:
            return resp.status, resp.headers, resp.read().decode("utf-8")

    def test_scrape_metrics(self):
        metrics = _filled_registry()
        server, thread = self._serve(metrics=metrics, tracer=Tracer())
        try:
            status, headers, body = self._get(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in headers["Content-Type"]
            assert lint_exposition(body) == []
            assert "repro_reader_reads_total 42.0" in body
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()

    def test_healthz_and_404(self):
        metrics = _filled_registry()
        server, thread = self._serve(
            metrics=metrics, tracer=Tracer(), rules=default_rules()
        )
        try:
            status, _, body = self._get(server, "/healthz")
            assert status == 200
            doc = json.loads(body)
            assert doc["status"] in ("ok", "warn")
            assert {f["rule"] for f in doc["findings"]} == {
                r.name for r in default_rules()
            }
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(server, "/nope")
            assert err.value.code == 404
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()

    def test_max_requests_auto_shutdown(self):
        metrics = _filled_registry()
        server, thread = self._serve(
            metrics=metrics, tracer=Tracer(), max_requests=2
        )
        try:
            self._get(server, "/metrics")
            self._get(server, "/metrics")
            # serve_forever must return on its own after the second scrape.
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        finally:
            server.server_close()
