"""End-to-end instrumentation tests: the pipeline, reader, and runner all
report through the global tracer / metrics registry."""

import pytest

from repro.experiments.base import ExperimentResult, REGISTRY, register, run_experiment
from repro.motion.script import script_for_letter, script_for_motion
from repro.motion.strokes import Motion, StrokeKind
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

#: The pipeline stage spans of one detect_motion call (paper Eq. 6-12
#: order); grammar is the eighth stage, exercised by recognize_letter.
MOTION_STAGES = (
    "segmentation",
    "suppression",
    "unwrap",
    "imaging",
    "otsu",
    "direction",
    "classify",
)


@pytest.fixture()
def tracer():
    t = get_tracer()
    was_enabled = t.enabled
    t.reset()
    t.enable()
    yield t
    t.reset()
    if not was_enabled:
        t.disable()


@pytest.fixture()
def metrics():
    m = get_metrics()
    was_enabled = m.enabled
    m.reset()
    m.enable()
    yield m
    m.reset()
    if not was_enabled:
        m.disable()


def _names(spans):
    out = {}
    for s in spans:
        out[s.name] = out.get(s.name, 0) + 1
    return out


class TestPipelineSpans:
    def test_detect_motion_emits_each_stage_exactly_once(self, shared_runner, tracer):
        script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
        log = shared_runner.run_script(script)
        mark = tracer.mark()
        shared_runner.pad.detect_motion(log)
        counts = _names(tracer.spans_since(mark))
        assert counts["detect_motion"] == 1
        for stage in MOTION_STAGES:
            assert counts.get(stage, 0) == 1, f"stage {stage}: {counts}"

    def test_recognize_letter_emits_grammar_once(self, shared_runner, tracer):
        script = script_for_letter("T", shared_runner.rng)
        log = shared_runner.run_script(script)
        mark = tracer.mark()
        shared_runner.pad.recognize_letter(log)
        counts = _names(tracer.spans_since(mark))
        assert counts["recognize_letter"] == 1
        assert counts["grammar"] == 1
        assert counts["segmentation"] == 1
        # A letter is one or more strokes: the per-window stages repeat.
        assert counts["analyze_window"] >= 1
        assert counts["suppression"] == counts["analyze_window"]

    def test_stage_spans_nest_under_detect_motion(self, shared_runner, tracer):
        script = script_for_motion(Motion(StrokeKind.HBAR), shared_runner.rng)
        log = shared_runner.run_script(script)
        mark = tracer.mark()
        shared_runner.pad.detect_motion(log)
        paths = {s.name: s.path for s in tracer.spans_since(mark)}
        assert paths["unwrap"].endswith("detect_motion/analyze_window/suppression/unwrap")
        assert paths["segmentation"].endswith("detect_motion/segmentation")

    def test_detect_motion_untraced_when_disabled(self, shared_runner):
        tracer = get_tracer()
        assert not tracer.enabled  # suite default
        script = script_for_motion(Motion(StrokeKind.VBAR), shared_runner.rng)
        log = shared_runner.run_script(script)
        mark = tracer.mark()
        obs = shared_runner.pad.detect_motion(log)
        assert obs is not None
        assert tracer.spans_since(mark) == []


class TestReaderMetrics:
    def test_collect_records_read_and_slot_counters(self, shared_runner, metrics):
        shared_runner.reader.collect_static(1.0)
        assert metrics.counter_value("reader.reads") > 0
        assert metrics.counter_value("reader.windows") == 1
        stats = shared_runner.reader.last_inventory_stats
        assert metrics.counter_value("reader.reads") == stats.successes
        assert metrics.counter_value("reader.collision_slots") == stats.collisions
        assert metrics.counter_value("reader.idle_slots") == stats.idles

    def test_collect_records_per_tag_histogram(self, shared_runner, metrics):
        shared_runner.reader.collect_static(1.0)
        summary = metrics.snapshot()["histograms"]["reader.reads_per_tag_window"]
        # A 1 s static capture reads every one of the 25 tags several times.
        assert summary["count"] == 25
        assert summary["min"] >= 1

    def test_collect_traced_with_attrs(self, shared_runner, tracer):
        mark = tracer.mark()
        shared_runner.reader.collect_static(0.5)
        (span,) = [s for s in tracer.spans_since(mark) if s.name == "reader.collect"]
        assert span.attrs["reads"] > 0
        assert span.attrs["duration_s"] == 0.5


class TestRunnerMetrics:
    def test_motion_trial_counters(self, shared_runner, metrics):
        trial = shared_runner.run_motion(Motion(StrokeKind.VBAR))
        assert metrics.counter_value("runner.motion_trials") == 1
        assert metrics.counter_value("runner.motion_detected") == float(trial.detected)

    def test_motion_trial_span_attrs(self, shared_runner, tracer):
        mark = tracer.mark()
        motion = Motion(StrokeKind.HBAR)
        shared_runner.run_motion(motion)
        (span,) = [s for s in tracer.spans_since(mark) if s.name == "trial.motion"]
        assert span.attrs["truth"] == motion.label
        assert "correct" in span.attrs


class TestExperimentNotes:
    def test_runtime_note_attached(self):
        @register("_obs_tmp")
        def runner(fast=True, seed=0):
            return ExperimentResult(experiment_id="_obs_tmp", title="t", rows=[])

        try:
            result = run_experiment("_obs_tmp")
            assert any(note.startswith("runtime ") for note in result.notes)
        finally:
            del REGISTRY["_obs_tmp"]

    def test_metrics_snapshot_note_when_enabled(self, metrics):
        @register("_obs_tmp2")
        def runner(fast=True, seed=0):
            metrics.inc("fake.counter", 3)
            return ExperimentResult(experiment_id="_obs_tmp2", title="t", rows=[])

        try:
            result = run_experiment("_obs_tmp2")
            assert any(note.startswith("metrics: ") and "fake.counter=3" in note
                       for note in result.notes)
        finally:
            del REGISTRY["_obs_tmp2"]


class TestSpanLatency:
    def test_detect_motion_latency_via_spans(self, shared_runner, tracer):
        # Span durations are the supported way to measure pipeline latency
        # (the removed timed_detect_motion shim used to wrap this).
        script = script_for_motion(Motion(StrokeKind.SLASH), shared_runner.rng)
        log = shared_runner.run_script(script)
        obs = shared_runner.pad.detect_motion(log)
        assert obs is not None
        durations = tracer.durations("detect_motion")
        assert len(durations) == 1
        assert 0.0 < durations[0] < 2.0

    def test_disabled_tracer_records_nothing(self, shared_runner):
        tracer = get_tracer()
        assert not tracer.enabled
        script = script_for_motion(Motion(StrokeKind.SLASH), shared_runner.rng)
        log = shared_runner.run_script(script)
        mark = tracer.mark()
        shared_runner.pad.detect_motion(log)
        assert tracer.spans_since(mark) == []
