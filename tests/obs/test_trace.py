"""Tracer unit tests: nesting, determinism of export, aggregation."""

import io
import json

import numpy as np
import pytest

from repro.obs.trace import Span, Tracer, get_tracer, percentile


class FakeClock:
    """Deterministic clock: each read advances by a fixed step."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def _run_workload(tracer: Tracer) -> None:
    with tracer.span("detect", reads=10):
        with tracer.span("suppression"):
            with tracer.span("unwrap") as sp:
                sp.set(tags=25)
        with tracer.span("otsu"):
            pass
    with tracer.span("detect"):
        pass


class TestNesting:
    def test_paths_follow_nesting(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        paths = [s.path for s in tracer.finished]  # start order
        assert paths == [
            "detect",
            "detect/suppression",
            "detect/suppression/unwrap",
            "detect/otsu",
            "detect",
        ]

    def test_depths_follow_nesting(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        by_path = {s.path: s.depth for s in tracer.finished}
        assert by_path["detect"] == 0
        assert by_path["detect/suppression"] == 1
        assert by_path["detect/suppression/unwrap"] == 2

    def test_attrs_recorded_from_kwargs_and_set(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        spans = {s.path: s for s in tracer.finished if s.name != "detect"}
        root = [s for s in tracer.finished if s.path == "detect"][0]
        assert root.attrs == {"reads": 10}
        assert spans["detect/suppression/unwrap"].attrs == {"tags": 25}

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.finished
        assert span.end is not None
        assert span.attrs["error"] == "ValueError"

    def test_sibling_after_exception_keeps_depth(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("root"):
            with pytest.raises(RuntimeError):
                with tracer.span("a"):
                    raise RuntimeError
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.finished}
        assert by_name["b"].path == "root/b"


class TestDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        _run_workload(tracer)
        assert tracer.finished == []

    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is tracer.span("y")

    def test_null_span_supports_protocol(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as sp:
            sp.set(anything=1)
        assert sp.duration == 0.0

    def test_global_tracer_disabled_by_default(self):
        assert isinstance(get_tracer(), Tracer)


class TestExport:
    def test_jsonl_is_valid_and_one_span_per_line(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        buf = io.StringIO()
        count = tracer.export_jsonl(buf)
        lines = buf.getvalue().strip().splitlines()
        assert count == len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert set(record) == {
                "name", "path", "depth", "start_s", "duration_s", "attrs"
            }

    def test_export_is_deterministic(self):
        outputs = []
        for _ in range(2):
            tracer = Tracer(enabled=True, clock=FakeClock())
            _run_workload(tracer)
            buf = io.StringIO()
            tracer.export_jsonl(buf)
            outputs.append(buf.getvalue())
        assert outputs[0] == outputs[1]

    def test_export_to_path(self, tmp_path):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 5
        assert len(path.read_text().strip().splitlines()) == 5

    def test_open_spans_not_exported(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        cm = tracer.span("open")
        cm.__enter__()
        buf = io.StringIO()
        assert tracer.export_jsonl(buf) == 0


class TestAggregate:
    def test_counts_and_totals(self):
        tracer = Tracer(enabled=True, clock=FakeClock(step=1.0))
        _run_workload(tracer)
        agg = tracer.aggregate()
        assert agg["detect"]["count"] == 2
        assert agg["detect/suppression/unwrap"]["count"] == 1

    def test_render_tree_lists_every_path(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        tree = tracer.render_tree()
        for name in ("detect", "suppression", "unwrap", "otsu"):
            assert name in tree
        assert "count=" in tree and "p95=" in tree

    def test_render_tree_empty(self):
        assert "no spans" in Tracer(enabled=True).render_tree()

    def test_mark_and_spans_since(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.spans_since(mark)] == ["after"]

    def test_reset_clears_spans_keeps_enabled(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        _run_workload(tracer)
        tracer.reset()
        assert tracer.finished == []
        assert tracer.enabled


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self, rng):
        values = list(rng.uniform(0.0, 10.0, size=501))
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), abs=1e-9
            )

    def test_single_value(self):
        assert percentile([3.5], 95.0) == 3.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)


def test_span_duration_zero_while_open():
    span = Span("x", "x", 0, 1.0)
    assert span.duration == 0.0
    span.end = 3.0
    assert span.duration == 2.0
