"""Metrics unit tests: instruments, bucketed percentiles, no-op overhead."""

import time

import numpy as np
import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, default_buckets, get_metrics


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.counter_value("a") == 3.5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry(enabled=True).counter_value("nope") == 0.0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry(enabled=True)
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        assert reg.gauge_value("g") == 7.0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_keeps_enabled_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        reg.reset()
        assert reg.counter_value("a") == 0.0
        assert reg.enabled

    def test_global_registry_disabled_by_default(self):
        assert isinstance(get_metrics(), MetricsRegistry)

    def test_render_mentions_each_instrument(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c")
        reg.set_gauge("g", 2.0)
        reg.observe("h", 0.1)
        text = reg.render()
        assert "counter    c" in text
        assert "gauge      g" in text
        assert "histogram  h" in text


class TestRemoveLabeled:
    def _populated(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("serve.chunks")
        reg.inc("serve.chunks", labels={"session": "a"})
        reg.inc("serve.chunks", labels={"session": "b"})
        reg.set_gauge("stream.lag_s", 0.1, labels={"session": "a"})
        reg.observe("lat", 0.5, labels={"session": "a", "kind": "x"})
        return reg

    def test_removes_every_instrument_with_matching_labels(self):
        reg = self._populated()
        assert reg.remove_labeled({"session": "a"}) == 3
        snap = reg.snapshot()
        labeled = [
            k
            for kind in snap.values()
            for k in kind
            if 'session="a"' in k
        ]
        assert labeled == []
        # Other tenants and the unlabeled aggregates are untouched.
        assert reg.counter_value("serve.chunks") == 1.0
        assert reg.counter_value('serve.chunks{session="b"}') == 1.0

    def test_subset_match_semantics(self):
        reg = self._populated()
        # {"kind": "x"} matches the histogram even though it also
        # carries a session label.
        assert reg.remove_labeled({"kind": "x"}) == 1
        assert reg.remove_labeled({"kind": "x"}) == 0

    def test_no_match_returns_zero(self):
        reg = self._populated()
        assert reg.remove_labeled({"session": "nope"}) == 0


class TestHistogram:
    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 0.5])

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_exact_count_sum_min_max(self):
        hist = Histogram([1.0, 2.0, 3.0])
        for v in (0.5, 1.5, 2.5, 10.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(14.5)
        assert hist.min == 0.5
        assert hist.max == 10.0
        assert hist.mean == pytest.approx(14.5 / 4)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(50.0)

    def test_percentiles_match_numpy_within_bucket_width(self, rng):
        # 101 linear buckets over [0, 1): the interpolation error is bounded
        # by one bucket width (0.01); allow 2 widths for rank-convention slack.
        buckets = list(np.linspace(0.01, 1.0, 100))
        hist = Histogram(buckets)
        values = rng.uniform(0.0, 1.0, size=10_000)
        for v in values:
            hist.observe(float(v))
        for q in (50.0, 95.0, 99.0):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), abs=0.02
            )

    def test_percentiles_on_lognormal_latencies(self, rng):
        # Latency-shaped data against the default geometric buckets: the
        # relative error at the quantile is bounded by the 1.5x bucket ratio.
        values = rng.lognormal(mean=-4.0, sigma=0.8, size=20_000)
        hist = Histogram(default_buckets())
        for v in values:
            hist.observe(float(v))
        for q in (50.0, 95.0, 99.0):
            estimate = hist.percentile(q)
            exact = float(np.percentile(values, q))
            assert estimate == pytest.approx(exact, rel=0.5)

    def test_summary_keys(self):
        hist = Histogram([1.0])
        hist.observe(0.5)
        assert set(hist.summary()) == {
            "count", "mean", "min", "p50", "p95", "p99", "max"
        }
        assert Histogram([1.0]).summary() == {"count": 0}

    def test_registry_histogram_buckets_pinned_once(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("h", buckets=[1.0, 2.0])
        assert reg.histogram("h", buckets=[9.0]) is hist


def _plain_call(name, value=1.0):
    return None


@pytest.mark.slow
def test_disabled_inc_overhead_under_2x_plain_call():
    """Disabled metrics must cost about as much as calling a no-op function.

    The registry's promise is 'no-op when disabled': one attribute check
    and return.  Compare the best-of-5 timing of a disabled inc() against a
    plain module-level function taking the same arguments.
    """
    reg = MetricsRegistry(enabled=False)
    inc = reg.inc
    n = 200_000

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(n):
                fn("name", 1.0)
            best = min(best, time.perf_counter() - start)
        return best

    baseline = best_of(_plain_call)
    disabled = best_of(inc)
    assert disabled < 2.0 * baseline, (
        f"disabled inc {disabled:.4f}s vs plain call {baseline:.4f}s "
        f"({disabled / baseline:.2f}x)"
    )
