"""Telemetry snapshot/merge/hub tests: the cross-process contract.

The merge semantics checked here (counters add, gauges last-write-wins,
histograms bucket-merge, spans append) are what lets the parallel runner
relay worker telemetry without distorting totals — see DESIGN.md §12 and
``tests/sim/test_parallel_telemetry.py`` for the end-to-end check.
"""

import io
import json
import pickle

import numpy as np
import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, scoped_metrics
from repro.obs.telemetry import (
    TelemetryHub,
    TelemetrySnapshot,
    capture_snapshot,
    merge_snapshot,
)
from repro.obs.trace import Tracer, scoped_tracer


def _random_hist(rng: np.random.Generator, bounds) -> Histogram:
    hist = Histogram(bounds)
    for value in rng.exponential(0.3, size=int(rng.integers(1, 50))):
        hist.observe(float(value))
    return hist


def _states_equal(a: dict, b: dict) -> bool:
    """State equality up to float-summation order in ``total``.

    Bucket counts, count, and min/max merge exactly; ``total`` is a float
    sum whose grouping differs between merge trees, so it only matches to
    rounding.
    """
    exact = {k: v for k, v in a.items() if k != "total"}
    if exact != {k: v for k, v in b.items() if k != "total"}:
        return False
    return a["total"] == pytest.approx(b["total"], rel=1e-12, abs=1e-12)


def _filled_pair():
    """A tracer + registry with one of everything recorded."""
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry(enabled=True)
    with tracer.span("outer"):
        with tracer.span("inner", k="v"):
            pass
    metrics.inc("c", 2.0)
    metrics.set_gauge("g", 7.5)
    metrics.set_gauge("g", 1.25, labels={"session": "a"})
    metrics.observe("h", 0.01)
    metrics.observe("h", 0.4)
    return tracer, metrics


class TestHistogramMergeAlgebra:
    BOUNDS = (0.01, 0.1, 1.0, 10.0)

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            a1, b1 = _random_hist(rng, self.BOUNDS), _random_hist(rng, self.BOUNDS)
            a2 = Histogram.from_state(a1.state())
            b2 = Histogram.from_state(b1.state())
            ab = a1.merge(b1).state()
            ba = b2.merge(a2).state()
            assert _states_equal(ab, ba)

    def test_merge_is_associative(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            parts = [_random_hist(rng, self.BOUNDS) for _ in range(3)]
            left = Histogram.from_state(parts[0].state())
            left.merge(parts[1]).merge(parts[2])
            bc = Histogram.from_state(parts[1].state())
            bc.merge(parts[2])
            right = Histogram.from_state(parts[0].state())
            right.merge(bc)
            assert _states_equal(left.state(), right.state())

    def test_merge_matches_single_stream(self):
        """Splitting observations across processes must not change stats."""
        rng = np.random.default_rng(7)
        values = rng.exponential(0.3, size=200)
        whole = Histogram(self.BOUNDS)
        part_a, part_b = Histogram(self.BOUNDS), Histogram(self.BOUNDS)
        for i, value in enumerate(values):
            whole.observe(float(value))
            (part_a if i % 2 else part_b).observe(float(value))
        assert _states_equal(part_a.merge(part_b).state(), whole.state())

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram((0.1, 1.0)).merge(Histogram((0.2, 1.0)))

    def test_state_roundtrip(self):
        rng = np.random.default_rng(8)
        hist = _random_hist(rng, self.BOUNDS)
        clone = Histogram.from_state(hist.state())
        assert clone.state() == hist.state()
        assert clone.percentile(95.0) == hist.percentile(95.0)

    def test_empty_state_elides_extrema(self):
        state = Histogram(self.BOUNDS).state()
        assert "min" not in state and "max" not in state
        assert Histogram.from_state(state).count == 0


class TestSnapshotRoundtrip:
    def test_pickle_roundtrip(self):
        tracer, metrics = _filled_pair()
        snap = capture_snapshot(tracer=tracer, metrics=metrics)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_json_roundtrip(self):
        tracer, metrics = _filled_pair()
        snap = capture_snapshot(tracer=tracer, metrics=metrics)
        clone = TelemetrySnapshot.from_json(snap.to_json())
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms
        assert clone.spans == snap.spans

    def test_empty_snapshot(self):
        snap = TelemetrySnapshot()
        assert snap.is_empty
        assert not TelemetrySnapshot(counters={"c": 1.0}).is_empty

    def test_capture_reset_gives_delta_semantics(self):
        tracer, metrics = _filled_pair()
        first = capture_snapshot(tracer=tracer, metrics=metrics, reset=True)
        assert not first.is_empty
        # After the reset, a fresh capture sees only what happened since.
        metrics.inc("c", 5.0)
        second = capture_snapshot(tracer=tracer, metrics=metrics, reset=True)
        assert second.counters == {"c": 5.0}
        assert second.spans == []
        assert tracer.enabled and metrics.enabled


class TestSnapshotMerge:
    def test_counters_add_gauges_last_write_wins(self):
        a = TelemetrySnapshot(counters={"c": 1.0}, gauges={"g": 1.0})
        b = TelemetrySnapshot(counters={"c": 2.0, "d": 4.0}, gauges={"g": 9.0})
        a.merge(b)
        assert a.counters == {"c": 3.0, "d": 4.0}
        assert a.gauges == {"g": 9.0}

    def test_histograms_bucket_merge(self):
        h1, h2 = Histogram((0.1, 1.0)), Histogram((0.1, 1.0))
        h1.observe(0.05)
        h2.observe(0.5)
        a = TelemetrySnapshot(histograms={"h": h1.state()})
        a.merge(TelemetrySnapshot(histograms={"h": h2.state()}))
        merged = Histogram.from_state(a.histograms["h"])
        assert merged.count == 2
        assert merged.total == pytest.approx(0.55)

    def test_merge_snapshot_into_registries(self):
        tracer, metrics = _filled_pair()
        snap = capture_snapshot(tracer=tracer, metrics=metrics)
        dst_tracer = Tracer(enabled=True)
        dst_metrics = MetricsRegistry(enabled=True)
        merge_snapshot(
            snap, tracer=dst_tracer, metrics=dst_metrics,
            span_attrs={"relayed": True},
        )
        assert dst_metrics.counter_value("c") == 2.0
        assert dst_metrics.gauge_value("g") == 7.5
        hist = dst_metrics.get_histogram("h")
        assert hist is not None and hist.count == 2
        assert len(dst_tracer.finished) == 2
        assert all(s.attrs.get("relayed") is True for s in dst_tracer.finished)
        # Merging the same snapshot again doubles counters: merge is a fold,
        # not an idempotent sync — callers own exactly-once delivery.
        merge_snapshot(snap, tracer=dst_tracer, metrics=dst_metrics)
        assert dst_metrics.counter_value("c") == 4.0


class TestTelemetryHub:
    def _hub(self, metrics, tracer, **kw):
        ticks = iter(float(i) for i in range(10_000))
        return TelemetryHub(
            metrics=metrics, tracer=tracer, clock=lambda: next(ticks), **kw
        )

    def test_sample_records_registry_state(self):
        tracer, metrics = _filled_pair()
        hub = self._hub(metrics, tracer)
        record = hub.sample()
        assert record["counters"]["c"] == 2.0
        assert record["gauges"]["g"] == 7.5
        assert record["histograms"]["h"]["count"] == 2
        assert "outer" in record["spans"]
        assert hub.latest() is record or hub.latest() == record

    def test_ring_is_bounded_and_counts_drops(self):
        metrics = MetricsRegistry(enabled=True)
        hub = self._hub(metrics, Tracer(), capacity=3)
        for i in range(5):
            metrics.set_gauge("g", float(i))
            hub.sample()
        assert len(hub.samples) == 3
        assert hub.dropped == 2
        assert [s["gauges"]["g"] for s in hub.samples] == [2.0, 3.0, 4.0]

    def test_series_and_rate(self):
        metrics = MetricsRegistry(enabled=True)
        hub = self._hub(metrics, Tracer())
        for total in (10.0, 30.0):
            metrics.inc("c", total - metrics.counter_value("c"))
            hub.sample()
        assert hub.counter_series("c") == [(0.0, 10.0), (1.0, 30.0)]
        assert hub.counter_rate("c") == pytest.approx(20.0)
        assert hub.counter_rate("missing") is None
        assert hub.gauge_series("missing") == []

    def test_export_jsonl(self, tmp_path):
        tracer, metrics = _filled_pair()
        hub = self._hub(metrics, tracer)
        hub.sample()
        hub.sample()
        out = tmp_path / "metrics.jsonl"
        assert hub.export_jsonl(str(out)) == 2
        lines = out.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert {"t", "counters", "gauges", "histograms", "spans"} <= set(record)
        buf = io.StringIO()
        assert hub.export_jsonl(buf) == 2

    def test_background_sampler_stops_cleanly(self):
        metrics = MetricsRegistry(enabled=True)
        hub = TelemetryHub(metrics=metrics, tracer=Tracer(), interval_s=0.01)
        hub.start()
        with pytest.raises(RuntimeError):
            hub.start()
        hub.stop(final_sample=True)
        assert len(hub.samples) >= 1
        hub.stop(final_sample=False)  # idempotent when not running

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TelemetryHub(interval_s=0.0)
        with pytest.raises(ValueError):
            TelemetryHub(capacity=0)

    def test_lazy_registry_resolution_sees_scoped_registries(self):
        hub = TelemetryHub()  # built *before* the scope opens
        with scoped_tracer(Tracer(enabled=True)), scoped_metrics(
            MetricsRegistry(enabled=True)
        ) as metrics:
            metrics.inc("scoped.c", 3.0)
            record = hub.sample()
        assert record["counters"] == {"scoped.c": 3.0}


class TestScopedRegistries:
    def test_scoped_metrics_restores_global(self):
        from repro.obs.metrics import get_metrics

        before = get_metrics()
        with scoped_metrics(MetricsRegistry(enabled=True)) as inner:
            assert get_metrics() is inner
            get_metrics().inc("x")
        assert get_metrics() is before
        assert before.counter_value("x") == 0.0

    def test_scoped_tracer_restores_global_on_error(self):
        from repro.obs.trace import get_tracer

        before = get_tracer()
        with pytest.raises(RuntimeError):
            with scoped_tracer(Tracer(enabled=True)) as inner:
                assert get_tracer() is inner
                raise RuntimeError("boom")
        assert get_tracer() is before
