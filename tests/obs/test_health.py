"""Health-rule tests: validation, evaluation, and the `repro top` frame."""

import json
import os

import pytest

from repro.obs.health import (
    HealthRule,
    HealthRuleError,
    default_rules,
    evaluate_rules,
    load_rules,
    render_status,
    rules_from_doc,
    worst_status,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryHub
from repro.obs.trace import Tracer

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _rule(**kw) -> HealthRule:
    base = dict(name="r", kind="gauge_min", target="g", threshold=1.0)
    base.update(kw)
    return HealthRule(**base)


def _eval_one(rule, metrics=None, tracer=None, hub=None):
    metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
    tracer = tracer if tracer is not None else Tracer(enabled=True)
    return evaluate_rules([rule], metrics=metrics, tracer=tracer, hub=hub)[0]


def _hub_with_samples(rows):
    """A hub holding synthetic samples: rows of (t, counters, gauges)."""
    hub = TelemetryHub(
        metrics=MetricsRegistry(enabled=True), tracer=Tracer(),
        clock=lambda: 0.0,
    )
    for t, counters, gauges in rows:
        hub._samples.append(
            {"t": t, "counters": counters, "gauges": gauges,
             "histograms": {}, "spans": {}}
        )
    return hub


class TestRuleValidation:
    def test_default_rules_are_valid(self):
        rules = default_rules()
        assert len(rules) >= 10
        assert any(r.kind == "gauge_drop" for r in rules)
        assert any(r.kind == "counter_stall" for r in rules)
        # The Fig. 24 end-to-end budgets are hard failures.
        budgets = {r.name: r for r in rules}
        assert budgets["detect_motion_budget"].severity == "fail"
        assert budgets["detect_motion_budget"].threshold == 0.1

    def test_shipped_rule_file_matches_defaults(self):
        path = os.path.join(ROOT, "scripts", "health_rules.json")
        assert load_rules(path) == default_rules()

    def test_unknown_kind_rejected(self):
        with pytest.raises(HealthRuleError, match="unknown kind"):
            _rule(kind="vibes")

    def test_bad_severity_rejected(self):
        with pytest.raises(HealthRuleError, match="severity"):
            _rule(severity="catastrophic")

    def test_counter_stall_needs_watch(self):
        with pytest.raises(HealthRuleError, match="watch"):
            _rule(kind="counter_stall", target="c")

    def test_gauge_drop_threshold_must_be_fraction(self):
        with pytest.raises(HealthRuleError, match="fraction"):
            _rule(kind="gauge_drop", threshold=1.5)

    def test_doc_must_be_list(self):
        with pytest.raises(HealthRuleError, match="array"):
            rules_from_doc({"name": "x"})

    def test_doc_missing_fields(self):
        with pytest.raises(HealthRuleError, match="missing required"):
            rules_from_doc([{"name": "x", "kind": "gauge_min"}])

    def test_doc_unknown_fields(self):
        with pytest.raises(HealthRuleError, match="unknown field"):
            rules_from_doc([
                {"name": "x", "kind": "gauge_min", "target": "g",
                 "threshold": 1.0, "color": "red"},
            ])

    def test_doc_non_numeric_threshold(self):
        with pytest.raises(HealthRuleError, match="number"):
            rules_from_doc([
                {"name": "x", "kind": "gauge_min", "target": "g",
                 "threshold": "1.0"},
            ])

    def test_load_rules_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{not json")
        with pytest.raises(HealthRuleError, match="not valid JSON"):
            load_rules(str(path))

    def test_load_rules_missing_file(self, tmp_path):
        with pytest.raises(HealthRuleError, match="cannot read"):
            load_rules(str(tmp_path / "absent.json"))

    def test_load_rules_roundtrip(self, tmp_path):
        path = tmp_path / "rules.json"
        doc = [r.to_dict() for r in default_rules()]
        path.write_text(json.dumps(doc))
        assert load_rules(str(path)) == default_rules()


class TestEvaluation:
    def test_span_budget_ok_and_fail(self):
        ticks = iter([0.0, 0.01, 1.0, 1.5])
        tracer = Tracer(enabled=True, clock=lambda: next(ticks))
        with tracer.span("detect_motion"):
            pass
        rule = _rule(kind="span_p95_budget", target="detect_motion",
                     threshold=0.1, severity="fail")
        assert _eval_one(rule, tracer=tracer).status == "ok"
        with tracer.span("detect_motion"):  # 0.5 s — blows the budget
            pass
        finding = _eval_one(rule, tracer=tracer)
        assert finding.status == "fail"
        assert finding.value > 0.1

    def test_missing_data_skips(self):
        for rule in (
            _rule(kind="span_p95_budget", target="nope"),
            _rule(kind="gauge_min", target="nope"),
            _rule(kind="histogram_p95_max", target="nope"),
            _rule(kind="gauge_drop", target="nope", threshold=0.5),
            _rule(kind="counter_stall", target="nope", watch="w"),
        ):
            assert _eval_one(rule).status == "skip"

    def test_gauge_min_max(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.set_gauge("g", 5.0)
        assert _eval_one(_rule(threshold=1.0), metrics=metrics).status == "ok"
        assert _eval_one(_rule(threshold=10.0), metrics=metrics).status == "warn"
        rule = _rule(kind="gauge_max", threshold=1.0, severity="fail")
        assert _eval_one(rule, metrics=metrics).status == "fail"

    def test_counter_min(self):
        metrics = MetricsRegistry(enabled=True)
        metrics.inc("c", 3.0)
        rule = _rule(kind="counter_min", target="c", threshold=2.0)
        assert _eval_one(rule, metrics=metrics).status == "ok"
        assert _eval_one(
            _rule(kind="counter_min", target="c", threshold=5.0),
            metrics=metrics,
        ).status == "warn"

    def test_counter_max(self):
        metrics = MetricsRegistry(enabled=True)
        rule = _rule(kind="counter_max", target="drops", threshold=0.0)
        # A missing counter reads zero, which satisfies the ceiling.
        assert _eval_one(rule, metrics=metrics).status == "ok"
        metrics.inc("drops")
        assert _eval_one(rule, metrics=metrics).status == "warn"
        loose = _rule(kind="counter_max", target="drops", threshold=5.0)
        assert _eval_one(loose, metrics=metrics).status == "ok"

    def test_histogram_p95(self):
        metrics = MetricsRegistry(enabled=True)
        for _ in range(20):
            metrics.observe("h", 2.0)
        rule = _rule(kind="histogram_p95_max", target="h", threshold=1.0)
        assert _eval_one(rule, metrics=metrics).status == "warn"

    def test_gauge_drop_detector(self):
        rule = _rule(kind="gauge_drop", target="rate", threshold=0.5)
        healthy = _hub_with_samples([
            (0.0, {}, {"rate": 200.0}),
            (1.0, {}, {"rate": 150.0}),
        ])
        assert _eval_one(rule, hub=healthy).status == "ok"
        collapsed = _hub_with_samples([
            (0.0, {}, {"rate": 200.0}),
            (1.0, {}, {"rate": 40.0}),  # 80% below peak
        ])
        finding = _eval_one(rule, hub=collapsed)
        assert finding.status == "warn"
        assert finding.value == pytest.approx(0.8)

    def test_counter_stall_detector(self):
        rule = _rule(kind="counter_stall", target="windows", watch="reads",
                     threshold=500.0)
        stalled = _hub_with_samples([
            (0.0, {"reads": 0.0, "windows": 4.0}, {}),
            (1.0, {"reads": 900.0, "windows": 4.0}, {}),
        ])
        assert _eval_one(rule, hub=stalled).status == "warn"
        flowing = _hub_with_samples([
            (0.0, {"reads": 0.0, "windows": 4.0}, {}),
            (1.0, {"reads": 900.0, "windows": 7.0}, {}),
        ])
        assert _eval_one(rule, hub=flowing).status == "ok"
        # Below the activity threshold there is not enough traffic to judge.
        quiet = _hub_with_samples([
            (0.0, {"reads": 0.0, "windows": 0.0}, {}),
            (1.0, {"reads": 100.0, "windows": 0.0}, {}),
        ])
        assert _eval_one(rule, hub=quiet).status == "ok"

    def test_gauge_growth_detector(self):
        rule = _rule(kind="gauge_growth", target="depth", threshold=100.0)
        steady = _hub_with_samples([
            (0.0, {}, {"depth": 10.0}),
            (1.0, {}, {"depth": 40.0}),
            (2.0, {}, {"depth": 12.0}),
        ])
        assert _eval_one(rule, hub=steady).status == "ok"
        growing = _hub_with_samples([
            (0.0, {}, {"depth": 10.0}),
            (1.0, {}, {"depth": 80.0}),
            (2.0, {}, {"depth": 150.0}),  # +140 over window min
        ])
        finding = _eval_one(rule, hub=growing)
        assert finding.status == "warn"
        assert finding.value == pytest.approx(140.0)
        # Without a telemetry window (or with one sample) there is no
        # trend to judge.
        assert _eval_one(rule, hub=None).status == "skip"
        single = _hub_with_samples([(0.0, {}, {"depth": 9e9})])
        assert _eval_one(rule, hub=single).status == "skip"

    def test_warn_findings_are_logged(self, caplog):
        metrics = MetricsRegistry(enabled=True)
        metrics.set_gauge("g", 0.0)
        with caplog.at_level("WARNING", logger="repro.obs.health"):
            _eval_one(_rule(threshold=1.0), metrics=metrics)
        assert len(caplog.records) == 1
        payload = json.loads(caplog.records[0].message.split(" ", 1)[1])
        assert payload["rule"] == "r" and payload["status"] == "warn"

    def test_worst_status(self):
        def f(status):
            from repro.obs.health import HealthFinding
            return HealthFinding(rule=_rule(), status=status, value=None,
                                 message="")
        assert worst_status([f("ok"), f("skip")]) == "ok"
        assert worst_status([f("ok"), f("warn")]) == "warn"
        assert worst_status([f("warn"), f("fail")]) == "fail"


class TestRenderStatus:
    def test_frame_contains_sections(self):
        metrics = MetricsRegistry(enabled=True)
        tracer = Tracer(enabled=True)
        with tracer.span("detect_motion"):
            pass
        metrics.set_gauge("reader.read_rate_hz", 215.9)
        metrics.set_gauge("stream.lag_s", 0.4, labels={"session": "live"})
        metrics.inc("reader.reads", 100.0)
        findings = evaluate_rules(
            default_rules(), metrics=metrics, tracer=tracer
        )
        frame = render_status(metrics, tracer, findings)
        assert "== spans" in frame and "detect_motion" in frame
        assert "reader.read_rate_hz = 215.9" in frame
        assert 'stream.lag_s{session="live"} = 0.4' in frame
        assert "== health ==" in frame
        assert "[ ok ]" in frame and "[ -- ]" in frame

    def test_empty_frame(self):
        frame = render_status(MetricsRegistry(enabled=True), Tracer())
        assert "(no spans recorded)" in frame
        assert "(no rules evaluated)" in frame
